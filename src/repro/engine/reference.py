"""Reference evaluator: a literal transcription of Figures 3–4.

The paper defines the semantics of Rel expressions compositionally with
respect to an environment μ. This module implements those equations as
directly as Python permits, with one necessary finitization: quantification
over ``Values`` and wildcard enumeration range over the **active domain**
(every value occurring in the environment's relations, plus the constants
of the expression). For *safe* expressions this coincides with the paper's
semantics — a safe expression's result only depends on the active domain —
and the production evaluator raises :class:`SafetyError` on the rest.

This evaluator is exponential and only suitable for tiny inputs; the test
suite uses it as an oracle against :mod:`repro.engine.expand`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.engine.builtins import FREE, Builtin
from repro.engine.builtins import lookup as lookup_builtin
from repro.engine.errors import EvaluationError
from repro.lang import ast
from repro.model.relation import EMPTY, Relation, TRUE
from repro.model.values import row_key, value_key

Tup = Tuple[Any, ...]


class _TupleSet:
    """A set of tuples under the engine's value identity (True ≠ 1,
    1 == 1.0) — the reference evaluator's accumulator, so it distinguishes
    exactly what the production engine distinguishes."""

    __slots__ = ("_rows",)

    def __init__(self, tuples: Iterable[Tup] = ()) -> None:
        self._rows: Dict[Tup, Tup] = {}
        for t in tuples:
            self._rows.setdefault(row_key(t), t)

    def add(self, tup: Tup) -> None:
        self._rows.setdefault(row_key(tup), tup)

    def __contains__(self, tup: Tup) -> bool:
        return row_key(tup) in self._rows

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)


class ReferenceEvaluator:
    """Evaluate core Rel expressions per the semantic equations.

    ``environment`` maps identifiers to relations (μ); ``max_tuple_width``
    bounds the tuple-wildcard enumeration (the active domain is finite, but
    tuples over it are not without a width bound — safe expressions never
    need more than the widest relation).
    """

    def __init__(self, environment: Dict[str, Relation],
                 max_tuple_width: Optional[int] = None) -> None:
        self.env: Dict[str, Any] = dict(environment)
        widths = [
            max((len(t) for t in rel.rows()), default=0)
            for rel in environment.values()
            if isinstance(rel, Relation)
        ]
        self.max_tuple_width = max_tuple_width if max_tuple_width is not None \
            else max(widths, default=0)

    # -- the active domain ----------------------------------------------------

    def active_domain(self, node: ast.Node) -> Tuple[Any, ...]:
        values: Dict[Any, Any] = {}
        for rel in self.env.values():
            if isinstance(rel, Relation):
                for tup in rel:
                    for v in tup:
                        if not isinstance(v, Relation):
                            values.setdefault(value_key(v), v)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Const) and not isinstance(sub.value, bool):
                values.setdefault(value_key(sub.value), sub.value)
        return tuple(values.values())

    def tuples_upto(self, domain: Tuple[Any, ...], width: int) -> Iterator[Tup]:
        for n in range(width + 1):
            yield from itertools.product(sorted(domain, key=repr), repeat=n)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, node: ast.Node) -> Relation:
        """J node Kμ."""
        domain = self.active_domain(node)
        return self._eval(node, dict(self.env), domain)

    def _eval(self, node: ast.Node, mu: Dict[str, Any],
              domain: Tuple[Any, ...]) -> Relation:
        # J c Kμ = {⟨c⟩}
        if isinstance(node, ast.Const):
            if isinstance(node.value, bool):
                return TRUE if node.value else EMPTY
            return Relation([(node.value,)])
        # J x Kμ = μ(x)
        if isinstance(node, ast.Ref):
            value = mu.get(node.name)
            if value is None:
                raise EvaluationError(f"unbound identifier {node.name}")
            if isinstance(value, Relation):
                return value
            return Relation([(value,)])
        # J x... Kμ = μ(x...)
        if isinstance(node, ast.TupleRef):
            value = mu.get(node.name)
            if not isinstance(value, tuple):
                raise EvaluationError(f"unbound tuple variable {node.name}")
            return Relation([value])
        # J _ Kμ = {⟨v⟩ | v ∈ Values} — finitized to the active domain
        if isinstance(node, ast.Wildcard):
            return Relation([(v,) for v in domain])
        # J _... Kμ = Tuples1 — finitized
        if isinstance(node, ast.TupleWildcard):
            return Relation(self.tuples_upto(domain, self.max_tuple_width))
        # J {e1; e2} Kμ = Je1K ∪ Je2K
        if isinstance(node, (ast.UnionExpr, ast.Or)):
            branches = node.items if isinstance(node, ast.UnionExpr) \
                else (node.lhs, node.rhs)
            result = EMPTY
            for b in branches:
                result = result.union(self._eval(b, mu, domain))
            return result
        # J (e1, e2) Kμ = Je1K × Je2K
        if isinstance(node, ast.ProductExpr):
            result = TRUE
            for item in node.items:
                result = result.product(self._eval(item, mu, domain))
            return result
        if isinstance(node, ast.And):
            return self._eval(node.lhs, mu, domain).product(
                self._eval(node.rhs, mu, domain))
        # J e where F Kμ = JeK × JFK
        if isinstance(node, ast.WhereExpr):
            return self._eval(node.expr, mu, domain).product(
                self._eval(node.condition, mu, domain))
        # J not F Kμ = {⟨⟩} − JFK
        if isinstance(node, ast.Not):
            return TRUE.difference(self._eval(node.operand, mu, domain))
        if isinstance(node, ast.Exists):
            return self._eval_quantifier(node, mu, domain, exists=True)
        if isinstance(node, ast.ForAll):
            return self._eval_quantifier(node, mu, domain, exists=False)
        if isinstance(node, ast.Abstraction):
            return self._eval_abstraction(node, mu, domain)
        if isinstance(node, ast.Application):
            return self._eval_application(node, mu, domain)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, mu, domain)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, mu, domain)
        if isinstance(node, ast.Neg):
            inner = self._eval(node.operand, mu, domain)
            return Relation([(-t[0],) for t in inner if len(t) == 1
                             and isinstance(t[0], (int, float))
                             and not isinstance(t[0], bool)])
        if isinstance(node, ast.Implies):
            return self._eval(ast.Or(ast.Not(node.lhs), node.rhs), mu, domain)
        if isinstance(node, ast.Iff):
            return self._eval(
                ast.And(ast.Or(ast.Not(node.lhs), node.rhs),
                        ast.Or(ast.Not(node.rhs), node.lhs)), mu, domain)
        if isinstance(node, ast.Xor):
            return self._eval(
                ast.And(ast.Or(node.lhs, node.rhs),
                        ast.Not(ast.And(node.lhs, node.rhs))), mu, domain)
        if isinstance(node, ast.Annotated):
            return self._eval(node.expr, mu, domain)
        raise EvaluationError(
            f"reference evaluator: unsupported node {type(node).__name__}"
        )

    # -- quantifiers ---------------------------------------------------------

    def _bindings_assignments(self, bindings, mu, domain
                              ) -> Iterator[Dict[str, Any]]:
        """All assignments of the bound variables over the active domain."""
        names: List[Tuple[str, str]] = []
        domains: List[List[Any]] = []
        for b in bindings:
            if isinstance(b, ast.VarBinding):
                names.append((b.name, "value"))
                domains.append(sorted(domain, key=repr))
            elif isinstance(b, ast.InBinding):
                rel = self._eval(b.domain, mu, domain)
                names.append((b.name, "value"))
                domains.append(sorted((t[0] for t in rel if len(t) == 1),
                                      key=repr))
            elif isinstance(b, ast.TupleVarBinding):
                names.append((b.name, "tuple"))
                domains.append(list(self.tuples_upto(domain,
                                                     self.max_tuple_width)))
            elif isinstance(b, (ast.WildcardBinding, ast.TupleWildcardBinding)):
                names.append((f"__anon_{id(b)}", "value"))
                domains.append(sorted(domain, key=repr))
            else:
                raise EvaluationError("unsupported binding in reference mode")
        for combo in itertools.product(*domains):
            yield {name: value for (name, _), value in zip(names, combo)}

    def _eval_quantifier(self, node, mu, domain, exists: bool) -> Relation:
        for assignment in self._bindings_assignments(node.bindings, mu, domain):
            extended = dict(mu)
            extended.update(assignment)
            holds = bool(self._eval(node.body, extended, domain))
            if exists and holds:
                return TRUE
            if not exists and not holds:
                return EMPTY
        return EMPTY if exists else TRUE

    # -- abstraction -------------------------------------------------------------

    def _eval_abstraction(self, node: ast.Abstraction, mu, domain) -> Relation:
        out = _TupleSet()
        for assignment in self._bindings_assignments(node.bindings, mu, domain):
            extended = dict(mu)
            extended.update(assignment)
            body = self._eval(node.body, extended, domain)
            if not body:
                continue
            prefix: Tup = ()
            for b in node.bindings:
                if isinstance(b, ast.VarBinding):
                    prefix += (assignment[b.name],)
                elif isinstance(b, ast.InBinding):
                    prefix += (assignment[b.name],)
                elif isinstance(b, ast.TupleVarBinding):
                    prefix += assignment[b.name]
                elif isinstance(b, ast.ConstBinding):
                    const = self._eval(b.expr, extended, domain)
                    if len(const) != 1:
                        raise EvaluationError("constant binding not single")
                    prefix += next(iter(const))
            for t in body:
                out.add(prefix + t)
        return Relation(out)

    # -- application ---------------------------------------------------------------

    def _eval_application(self, node: ast.Application, mu, domain) -> Relation:
        target = self._target_relation(node.target, mu, domain)
        if isinstance(target, Builtin):
            return self._apply_builtin(target, node, mu, domain)
        result_tuples = _TupleSet(target.rows())
        for arg in node.args:
            next_tuples = _TupleSet()
            if isinstance(arg, ast.Wildcard):
                # J{e}[_]K = {t | ⟨v⟩·t ∈ JeK}
                for t in result_tuples:
                    if len(t) >= 1 and not isinstance(t[0], Relation):
                        next_tuples.add(t[1:])
            elif isinstance(arg, ast.TupleWildcard):
                for t in result_tuples:
                    for i in range(len(t) + 1):
                        next_tuples.add(t[i:])
            elif isinstance(arg, ast.TupleRef):
                seg = mu.get(arg.name)
                if not isinstance(seg, tuple):
                    raise EvaluationError(f"unbound tuple variable {arg.name}")
                for t in result_tuples:
                    if t[: len(seg)] == seg:
                        next_tuples.add(t[len(seg):])
            elif isinstance(arg, ast.Annotated) and arg.second_order:
                value = self._eval(arg.expr, mu, domain)
                for t in result_tuples:
                    if len(t) >= 1 and isinstance(t[0], Relation) \
                            and t[0] == value:
                        next_tuples.add(t[1:])
            else:
                inner = arg.expr if isinstance(arg, ast.Annotated) else arg
                values = self._eval(inner, mu, domain)
                scalars = {value_key(t[0]) for t in values if len(t) == 1}
                for t in result_tuples:
                    if len(t) >= 1 and value_key(t[0]) in scalars:
                        next_tuples.add(t[1:])
            result_tuples = next_tuples
        if not node.partial:
            # Full application: intersect with {⟨⟩}.
            return TRUE if () in result_tuples else EMPTY
        return Relation(result_tuples)

    def _target_relation(self, target: ast.Node, mu, domain):
        if isinstance(target, ast.Ref):
            if target.name in mu:
                value = mu[target.name]
                if isinstance(value, Relation):
                    return value
                raise EvaluationError(f"{target.name} is not a relation")
            builtin = lookup_builtin(target.name)
            if builtin is not None:
                return builtin
            raise EvaluationError(f"unbound identifier {target.name}")
        return self._eval(target, mu, domain)

    def _apply_builtin(self, builtin: Builtin, node: ast.Application,
                       mu, domain) -> Relation:
        values: List[List[Any]] = []
        for arg in node.args:
            inner = arg.expr if isinstance(arg, ast.Annotated) else arg
            rel = self._eval(inner, mu, domain)
            values.append([t[0] for t in rel if len(t) == 1])
        out = _TupleSet()
        arity = max(builtin.arities())
        for combo in itertools.product(*values):
            slots = tuple(combo) + (FREE,) * (arity - len(combo))
            for solution in builtin.solve(slots):
                out.add(solution[len(combo):])
        if not node.partial:
            return TRUE if () in out else EMPTY
        return Relation(out)

    # -- comparisons and arithmetic -----------------------------------------------

    def _eval_compare(self, node: ast.Compare, mu, domain) -> Relation:
        import operator

        ops = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
               "<=": operator.le, ">": operator.gt, ">=": operator.ge}
        lhs = self._eval(node.lhs, mu, domain)
        rhs = self._eval(node.rhs, mu, domain)
        for lt in lhs:
            for rt in rhs:
                if len(lt) == 1 and len(rt) == 1:
                    try:
                        if ops[node.op](lt[0], rt[0]):
                            return TRUE
                    except TypeError:
                        continue
        return EMPTY

    def _eval_binop(self, node: ast.BinOp, mu, domain) -> Relation:
        names = {"+": "add", "-": "subtract", "*": "multiply",
                 "/": "divide", "%": "modulo", "^": "power"}
        builtin = lookup_builtin(names[node.op])
        lhs = self._eval(node.lhs, mu, domain)
        rhs = self._eval(node.rhs, mu, domain)
        out = _TupleSet()
        for lt in lhs:
            for rt in rhs:
                if len(lt) == 1 and len(rt) == 1:
                    for solution in builtin.solve((lt[0], rt[0], FREE)):
                        out.add((solution[2],))
        return Relation(out)
