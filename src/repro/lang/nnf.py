"""Negation normal form: pushing negation through formulas.

Used by the integrity-constraint checker (Section 3.5): the violations of
``ic c(x) requires G(x) implies F(x)`` are the valuations of ``x`` where the
requirement fails, i.e. ``G(x) and not F(x)``. Computing them safely needs
the negation pushed inward so the positive guard ``G`` generates candidate
bindings.
"""

from __future__ import annotations

from repro.lang import ast


def negate(node: ast.Node) -> ast.Node:
    """The negation of a formula, pushed inward (NNF).

    De Morgan over ``and``/``or``, duality of quantifiers, implication and
    equivalence expansion, comparison flipping; anything else is wrapped in
    ``not``.
    """
    if isinstance(node, ast.Not):
        return node.operand
    if isinstance(node, ast.And):
        return ast.Or(negate(node.lhs), negate(node.rhs), pos=node.pos)
    if isinstance(node, ast.Or):
        return ast.And(negate(node.lhs), negate(node.rhs), pos=node.pos)
    if isinstance(node, ast.Implies):
        return ast.And(node.lhs, negate(node.rhs), pos=node.pos)
    if isinstance(node, ast.Iff):
        return ast.Or(
            ast.And(node.lhs, negate(node.rhs)),
            ast.And(node.rhs, negate(node.lhs)),
            pos=node.pos,
        )
    if isinstance(node, ast.Xor):
        return ast.Iff(node.lhs, node.rhs, pos=node.pos)
    if isinstance(node, ast.Exists):
        return ast.ForAll(node.bindings, negate(node.body), pos=node.pos)
    if isinstance(node, ast.ForAll):
        return ast.Exists(node.bindings, negate(node.body), pos=node.pos)
    if isinstance(node, ast.Compare):
        flipped = {"=": "!=", "!=": "=", "<": ">=", "<=": ">",
                   ">": "<=", ">=": "<"}
        return ast.Compare(flipped[node.op], node.lhs, node.rhs, pos=node.pos)
    if isinstance(node, ast.Const) and isinstance(node.value, bool):
        return ast.Const(not node.value, pos=node.pos)
    if isinstance(node, ast.WhereExpr):
        # (e where F) as a formula: holds iff e non-empty and F — negate as
        # a conjunction.
        return negate(ast.And(node.expr, node.condition))
    return ast.Not(node, pos=node.pos)
