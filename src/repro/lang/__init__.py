"""Language frontend for Rel: tokenizer, AST, parser, and desugarer.

The concrete syntax follows Figure 2 of the paper plus the surface forms used
throughout Sections 3–5: ``def`` rules with parenthesized (formula) or
bracketed (expression) heads, ``ic … requires`` integrity constraints, infix
arithmetic and comparison operators, ``where``, ``implies``/``iff``/``xor``
sugar, union braces ``{e1; e2}``, tuple variables ``x...``, relation-variable
bindings ``{A}``, the ``?{…}``/``&{…}`` first/second-order argument
annotations, and ``:Name`` symbols.
"""

from repro.lang.lexer import Token, TokenKind, tokenize, LexError
from repro.lang.parser import ParseError, parse_expression, parse_program
from repro.lang import ast

__all__ = [
    "LexError",
    "ParseError",
    "Token",
    "TokenKind",
    "ast",
    "parse_expression",
    "parse_program",
    "tokenize",
]
