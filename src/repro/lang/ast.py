"""Abstract syntax for Rel.

The node classes mirror the grammar of Figure 2. Every node records its
source position for error reporting. Expressions and formulas share a single
class hierarchy: in Rel, a formula *is* an expression that evaluates to a
Boolean relation (``{}`` or ``{()}``), cf. Section 5.3.1 "Expressions vs
Formulas".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Pos:
    """Source position (1-based line/column)."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"


NOPOS = Pos()


class Node:
    """Base class for all AST nodes."""

    pos: Pos

    def children(self) -> Tuple["Node", ...]:
        """Child nodes, for generic traversals."""
        return ()


# ---------------------------------------------------------------------------
# Expressions (Expr in Figure 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const(Node):
    """A literal constant: integer, float, string, boolean, or symbol."""

    value: Any
    pos: Pos = NOPOS


@dataclass(frozen=True)
class Ref(Node):
    """An identifier reference — a variable or a relation name.

    Which one it is depends on scope and is resolved at evaluation time:
    locally-bound names are variables; otherwise the name refers to a
    defined relation, a base relation, or a standard-library relation.
    """

    name: str
    pos: Pos = NOPOS


@dataclass(frozen=True)
class TupleRef(Node):
    """A tuple-variable reference ``x...`` (Section 4.1)."""

    name: str
    pos: Pos = NOPOS


@dataclass(frozen=True)
class Wildcard(Node):
    """The anonymous variable ``_`` — existential immediately outside its atom."""

    pos: Pos = NOPOS


@dataclass(frozen=True)
class TupleWildcard(Node):
    """The tuple wildcard ``_...`` — matches any tuple, including the empty one."""

    pos: Pos = NOPOS


@dataclass(frozen=True)
class ProductExpr(Node):
    """Cartesian product ``(e1, ..., en)`` — the infix-comma operator."""

    items: Tuple[Node, ...]
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.items


@dataclass(frozen=True)
class UnionExpr(Node):
    """Union ``{e1; ...; en}``. ``{}`` (no items) is the empty relation."""

    items: Tuple[Node, ...]
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.items


@dataclass(frozen=True)
class WhereExpr(Node):
    """``Expr where Formula`` — sugar for ``(Expr, Formula)`` (Section 5.3.1)."""

    expr: Node
    condition: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.expr, self.condition)


# ---------------------------------------------------------------------------
# Bindings (Binding / FOBinding in Figure 2)
# ---------------------------------------------------------------------------


class Binding(Node):
    """Base class of binding forms in heads, abstractions, and quantifiers."""


@dataclass(frozen=True)
class VarBinding(Binding):
    """A plain first-order variable binding ``x``."""

    name: str
    pos: Pos = NOPOS


@dataclass(frozen=True)
class InBinding(Binding):
    """A range-restricted binding ``x in Domain`` (Section 3.1)."""

    name: str
    domain: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.domain,)


@dataclass(frozen=True)
class TupleVarBinding(Binding):
    """A tuple-variable binding ``x...`` (Section 4.1)."""

    name: str
    pos: Pos = NOPOS


@dataclass(frozen=True)
class RelVarBinding(Binding):
    """A relation-variable binding ``{A}`` (Section 4.2)."""

    name: str
    pos: Pos = NOPOS


@dataclass(frozen=True)
class ConstBinding(Binding):
    """A constant in a head position, e.g. the ``0`` in ``APSP({V},{E},x,y,0)``.

    Semantically a fresh variable equated to the constant expression.
    """

    expr: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class WildcardBinding(Binding):
    """A ``_`` in a binding position: an anonymous, projected-away variable."""

    pos: Pos = NOPOS


@dataclass(frozen=True)
class TupleWildcardBinding(Binding):
    """A ``_...`` in a binding position."""

    pos: Pos = NOPOS


# ---------------------------------------------------------------------------
# Abstraction and application (Sections 4.3, 4.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Abstraction(Node):
    """``[bindings] : Expr`` or ``(bindings) : Formula`` (forms 3a/3b).

    ``brackets`` distinguishes the two: the paren form requires the body to
    be a formula, the bracket form allows a general expression whose result
    tuples are appended after the binding values.
    """

    bindings: Tuple[Binding, ...]
    body: Node
    brackets: bool
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.bindings + (self.body,)


@dataclass(frozen=True)
class Application(Node):
    """Relational application: ``T[args]`` (partial) or ``T(args)`` (full).

    ``target`` is an arbitrary expression (usually a :class:`Ref`).
    Arguments are expressions, possibly wildcards, tuple variables, or
    annotated first/second-order arguments (:class:`Annotated`).
    """

    target: Node
    args: Tuple[Node, ...]
    partial: bool
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.target,) + self.args


@dataclass(frozen=True)
class Annotated(Node):
    """An annotated argument ``?{Expr}`` (first-order) or ``&{Expr}`` (second-order).

    See the Addendum's "Disambiguating First- and Second-Order Arguments".
    """

    expr: Node
    second_order: bool
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class And(Node):
    """Conjunction. On formulas, ``and`` coincides with Cartesian product."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Or(Node):
    """Disjunction. On formulas, ``or`` coincides with union."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Not(Node):
    """Negation: ``{⟨⟩} − F``."""

    operand: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Exists(Node):
    """``exists((b1, ..., bn) | F)``."""

    bindings: Tuple[Binding, ...]
    body: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.bindings + (self.body,)


@dataclass(frozen=True)
class ForAll(Node):
    """``forall((b1, ..., bn) | F)``."""

    bindings: Tuple[Binding, ...]
    body: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.bindings + (self.body,)


@dataclass(frozen=True)
class Compare(Node):
    """An infix comparison ``e1 op e2`` with op in ``= != < <= > >=``."""

    op: str
    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class BinOp(Node):
    """Infix arithmetic ``e1 op e2`` with op in ``+ - * / % ^``.

    Denotes the *value* of the operation — shorthand for the library
    relation's partial application, e.g. ``x + y`` ≡ ``add[x, y]``.
    """

    op: str
    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Neg(Node):
    """Unary minus."""

    operand: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class DotJoin(Node):
    """Infix ``A . B`` — the standard library's ``dot_join`` (Section 5.1)."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class LeftOverride(Node):
    """Infix ``A <++ B`` — the standard library's ``left_override``."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Implies(Node):
    """``F1 implies F2`` — syntactic sugar for ``(not F1) or F2``."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Iff(Node):
    """``F1 iff F2`` — sugar for ``(F1 implies F2) and (F2 implies F1)``."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Xor(Node):
    """``F1 xor F2`` — sugar for ``(F1 or F2) and not (F1 and F2)``."""

    lhs: Node
    rhs: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


# ---------------------------------------------------------------------------
# Declarations (RelDef / RelProgram in Figure 2, plus ``ic`` from Section 3.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuleDef(Node):
    """One ``def`` rule: ``def Name Abstraction``.

    ``head`` holds the abstraction's bindings; ``formula_head`` is True for
    the paren form (body must be a formula) and False for the bracket form
    (body is a general expression appended after the head values).
    Rules with no head bindings at all (``def Name : Expr`` / ``= Expr``)
    have ``head == ()`` and ``formula_head == False``.
    """

    name: str
    head: Tuple[Binding, ...]
    body: Node
    formula_head: bool
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.head + (self.body,)


@dataclass(frozen=True)
class ICDef(Node):
    """An integrity constraint ``ic name(params) requires Formula``.

    With parameters, the constraint relation collects the violating
    valuations (Section 3.5); without, it is a Boolean check.
    """

    name: str
    params: Tuple[Binding, ...]
    body: Node
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.params + (self.body,)


@dataclass(frozen=True)
class Program(Node):
    """A parsed Rel program: a sequence of declarations."""

    declarations: Tuple[Node, ...]
    pos: Pos = NOPOS

    def children(self) -> Tuple[Node, ...]:
        return self.declarations

    def rules(self) -> Tuple[RuleDef, ...]:
        return tuple(d for d in self.declarations if isinstance(d, RuleDef))

    def constraints(self) -> Tuple[ICDef, ...]:
        return tuple(d for d in self.declarations if isinstance(d, ICDef))


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(node: Node):
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def free_names(node: Node, bound: frozenset[str] = frozenset()) -> set[str]:
    """Names referenced in ``node`` that are not bound within it.

    Used by the resolver to distinguish local variables from relation
    references and by the safety analysis to find dependencies.
    """
    out: set[str] = set()
    _free_names(node, bound, out)
    return out


def _binding_names(bindings: Sequence[Binding]) -> set[str]:
    names: set[str] = set()
    for b in bindings:
        if isinstance(b, (VarBinding, TupleVarBinding, RelVarBinding)):
            names.add(b.name)
        elif isinstance(b, InBinding):
            names.add(b.name)
    return names


def _free_names(node: Node, bound: frozenset[str], out: set[str]) -> None:
    if isinstance(node, Ref):
        if node.name not in bound:
            out.add(node.name)
        return
    if isinstance(node, TupleRef):
        if node.name not in bound:
            out.add(node.name)
        return
    if isinstance(node, (Abstraction, Exists, ForAll)):
        inner = bound | frozenset(_binding_names(node.bindings))
        for b in node.bindings:
            if isinstance(b, (InBinding, ConstBinding)):
                for child in b.children():
                    _free_names(child, bound, out)
        _free_names(node.body, inner, out)
        return
    for child in node.children():
        _free_names(child, bound, out)
