"""Pretty-printer (unparser) for Rel ASTs.

Produces concrete syntax that re-parses to an equal tree — used by the
round-trip property tests and for error reporting/debugging. Output style
follows the paper's: minimal parenthesization driven by the same precedence
table as the parser.
"""

from __future__ import annotations

from typing import Any

from repro.lang import ast
from repro.model.values import Symbol

#: Precedence levels, mirroring the parser (higher binds tighter).
_LEVELS = {
    ast.WhereExpr: 1,
    ast.Iff: 2,
    ast.Implies: 3,
    ast.Xor: 4,
    ast.Or: 5,
    ast.And: 6,
    ast.Not: 7,
    ast.Compare: 8,
    ast.LeftOverride: 9,
    ast.BinOp: 10,  # adjusted per operator below
    ast.Neg: 13,
    ast.DotJoin: 14,
}

_BINOP_LEVEL = {"+": 10, "-": 10, "*": 11, "/": 11, "%": 11, "^": 12}


def _level(node: ast.Node) -> int:
    if isinstance(node, ast.BinOp):
        return _BINOP_LEVEL[node.op]
    return _LEVELS.get(type(node), 15)


def _const(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"') \
            .replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(value, Symbol):
        return f":{value.name}"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int) and value < 0:
        return f"({value})"
    return repr(value)


def _binding(b: ast.Binding) -> str:
    if isinstance(b, ast.VarBinding):
        return b.name
    if isinstance(b, ast.TupleVarBinding):
        return f"{b.name}..."
    if isinstance(b, ast.RelVarBinding):
        return "{" + b.name + "}"
    if isinstance(b, ast.InBinding):
        return f"{b.name} in {pretty(b.domain)}"
    if isinstance(b, ast.ConstBinding):
        return pretty(b.expr)
    if isinstance(b, ast.WildcardBinding):
        return "_"
    if isinstance(b, ast.TupleWildcardBinding):
        return "_..."
    raise TypeError(f"unknown binding {type(b).__name__}")


def _bindings(bindings) -> str:
    return ", ".join(_binding(b) for b in bindings)


def _wrap(node: ast.Node, parent_level: int) -> str:
    text = pretty(node)
    if _level(node) < parent_level:
        return f"({text})"
    return text


def pretty(node: ast.Node) -> str:
    """Render a node as concrete Rel syntax."""
    if isinstance(node, ast.Const):
        return _const(node.value)
    if isinstance(node, ast.Ref):
        return node.name
    if isinstance(node, ast.TupleRef):
        return f"{node.name}..."
    if isinstance(node, ast.Wildcard):
        return "_"
    if isinstance(node, ast.TupleWildcard):
        return "_..."
    if isinstance(node, ast.ProductExpr):
        return "(" + ", ".join(pretty(i) for i in node.items) + ")"
    if isinstance(node, ast.UnionExpr):
        return "{" + "; ".join(pretty(i) for i in node.items) + "}"
    if isinstance(node, ast.WhereExpr):
        level = _level(node)
        return f"{_wrap(node.expr, level + 1)} where {_wrap(node.condition, level + 1)}"
    if isinstance(node, ast.Abstraction):
        open_, close = ("[", "]") if node.brackets else ("(", ")")
        return f"{open_}{_bindings(node.bindings)}{close} : {pretty(node.body)}"
    if isinstance(node, ast.Application):
        target = pretty(node.target)
        if not isinstance(node.target, (ast.Ref, ast.Application)):
            target = f"{{{target}}}" if not target.startswith("{") else target
        args = ", ".join(pretty(a) for a in node.args)
        return f"{target}[{args}]" if node.partial else f"{target}({args})"
    if isinstance(node, ast.Annotated):
        sigil = "&" if node.second_order else "?"
        return f"{sigil}{{{pretty(node.expr)}}}"
    if isinstance(node, ast.And):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} and {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.Or):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} or {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.Not):
        return f"not {_wrap(node.operand, _level(node))}"
    if isinstance(node, ast.Exists):
        return f"exists(({_bindings(node.bindings)}) | {pretty(node.body)})"
    if isinstance(node, ast.ForAll):
        return f"forall(({_bindings(node.bindings)}) | {pretty(node.body)})"
    if isinstance(node, ast.Compare):
        level = _level(node)
        return f"{_wrap(node.lhs, level + 1)} {node.op} {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.BinOp):
        level = _level(node)
        right_level = level + 1 if node.op != "^" else level
        return f"{_wrap(node.lhs, level)} {node.op} {_wrap(node.rhs, right_level)}"
    if isinstance(node, ast.Neg):
        return f"- {_wrap(node.operand, _level(node))}"
    if isinstance(node, ast.DotJoin):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} . {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.LeftOverride):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} <++ {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.Implies):
        level = _level(node)
        return f"{_wrap(node.lhs, level + 1)} implies {_wrap(node.rhs, level)}"
    if isinstance(node, ast.Iff):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} iff {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.Xor):
        level = _level(node)
        return f"{_wrap(node.lhs, level)} xor {_wrap(node.rhs, level + 1)}"
    if isinstance(node, ast.RuleDef):
        head = f"({_bindings(node.head)})" if node.formula_head \
            else f"[{_bindings(node.head)}]"
        name = node.name if node.name[0].isalpha() or node.name[0] == "_" \
            else f"({node.name})"
        if not node.head:
            return f"def {name} : {pretty(node.body)}"
        return f"def {name}{head} : {pretty(node.body)}"
    if isinstance(node, ast.ICDef):
        params = f"({_bindings(node.params)})" if node.params else "()"
        return f"ic {node.name}{params} requires {pretty(node.body)}"
    if isinstance(node, ast.Program):
        return "\n".join(pretty(d) for d in node.declarations)
    raise TypeError(f"cannot pretty-print {type(node).__name__}")
