"""Recursive-descent parser for Rel.

Implements the grammar of Figure 2 together with the surface conveniences
used throughout the paper (see the module docstring of ``repro.lang``).

Operator precedence, loosest to tightest::

    where
    iff
    implies            (right-associative)
    xor
    or
    and
    not                (prefix)
    = != < <= > >=     (comparisons)
    <++                (left override)
    + -
    * / %
    ^
    unary -
    .                  (dot join)
    application  e[...] e(...)

Commas build Cartesian products only inside parentheses; semicolons build
unions only inside braces — exactly how the paper writes them.

Disambiguation of abstractions (``(x, y) : F`` / ``[x] : e``) from products
and application argument lists is by bounded lookahead: scan to the matching
closing delimiter and check for a following ``:``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.model.values import Symbol


class ParseError(SyntaxError):
    """Raised on syntactically invalid programs, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (at {token.line}:{token.col}, near {token.text!r})")
        self.token = token


_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_DEFINABLE_OPS = {"+", "-", "*", "/", "%", "^", "<++", "."}


class Parser:
    """A single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token utilities ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind is not TokenKind.EOF:
            self.index += 1
        return tok

    def check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind is kind and (text is None or tok.text == text)

    def check_kw(self, word: str) -> bool:
        return self.check(TokenKind.KEYWORD, word)

    def match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if self.check(kind, text):
            return self.advance()
        want = text or kind.value
        raise ParseError(f"expected {want!r}", self.peek())

    def pos(self) -> ast.Pos:
        tok = self.peek()
        return ast.Pos(tok.line, tok.col)

    # -- lookahead helpers ---------------------------------------------------

    def _match_delim(self, open_kind: TokenKind) -> int:
        """Index just past the delimiter matching the one at ``self.index``.

        Assumes ``self.tokens[self.index]`` is the opening delimiter.
        """
        pairs = {
            TokenKind.LPAREN: TokenKind.RPAREN,
            TokenKind.LBRACKET: TokenKind.RBRACKET,
            TokenKind.LBRACE: TokenKind.RBRACE,
            TokenKind.QMARK_BRACE: TokenKind.RBRACE,
            TokenKind.AMP_BRACE: TokenKind.RBRACE,
        }
        close_kind = pairs[open_kind]
        depth = 0
        idx = self.index
        opens = set(pairs)
        closes = set(pairs.values())
        while idx < len(self.tokens):
            kind = self.tokens[idx].kind
            if kind in opens:
                depth += 1
            elif kind in closes:
                depth -= 1
                if depth == 0:
                    return idx + 1
            elif kind is TokenKind.EOF:
                break
            idx += 1
        raise ParseError("unbalanced delimiter", self.tokens[self.index])

    def _delimited_abstraction_follows(self) -> bool:
        """True if the delimiter at the cursor closes and is followed by ``:``.

        Used to recognize ``(bindings) : F`` and ``[bindings] : e``.
        """
        end = self._match_delim(self.peek().kind)
        return end < len(self.tokens) and self.tokens[end].kind is TokenKind.COLON

    # -- programs ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self.check(TokenKind.EOF):
            if self.check_kw("def"):
                decls.append(self.parse_def())
            elif self.check_kw("ic"):
                decls.append(self.parse_ic())
            else:
                raise ParseError("expected 'def' or 'ic'", self.peek())
        return ast.Program(tuple(decls))

    def parse_def(self) -> ast.RuleDef:
        pos = self.pos()
        self.expect(TokenKind.KEYWORD, "def")
        name = self._parse_def_name()

        # Head forms: (bindings), [bindings], braced abstraction, or nullary.
        if self.check(TokenKind.LPAREN):
            head = self._parse_binding_list(TokenKind.LPAREN, TokenKind.RPAREN)
            self._expect_rule_separator()
            body = self.parse_expr()
            return ast.RuleDef(name, head, body, formula_head=True, pos=pos)
        if self.check(TokenKind.LBRACKET):
            head = self._parse_binding_list(TokenKind.LBRACKET, TokenKind.RBRACKET)
            self._expect_rule_separator()
            body = self.parse_expr()
            return ast.RuleDef(name, head, body, formula_head=False, pos=pos)
        if self.check(TokenKind.LBRACE):
            body = self.parse_primary()
            if isinstance(body, ast.Abstraction):
                return ast.RuleDef(
                    name,
                    body.bindings,
                    body.body,
                    formula_head=not body.brackets,
                    pos=pos,
                )
            return ast.RuleDef(name, (), body, formula_head=False, pos=pos)
        # Nullary: def Name : expr   or   def Name = expr
        self._expect_rule_separator()
        body = self.parse_expr()
        if isinstance(body, ast.Abstraction):
            return ast.RuleDef(
                name, body.bindings, body.body, formula_head=not body.brackets, pos=pos
            )
        return ast.RuleDef(name, (), body, formula_head=False, pos=pos)

    def _parse_def_name(self) -> str:
        # Operator definition: def (+)(x,y,z) : ...
        if self.check(TokenKind.LPAREN):
            after = self.peek(1)
            if after.kind is TokenKind.OP and self.peek(2).kind is TokenKind.RPAREN:
                self.advance()
                op = self.advance().text
                self.advance()
                if op not in _DEFINABLE_OPS:
                    raise ParseError(f"operator {op!r} is not definable", self.peek())
                return op
        tok = self.peek()
        if tok.kind is TokenKind.ID:
            return self.advance().text
        # Control relations and library names may shadow keywords in other
        # systems; here only proper identifiers are rule names.
        raise ParseError("expected relation name after 'def'", tok)

    def _expect_rule_separator(self) -> None:
        if self.match(TokenKind.COLON):
            return
        if self.match(TokenKind.OP, "="):
            return
        raise ParseError("expected ':' or '=' in definition", self.peek())

    def parse_ic(self) -> ast.ICDef:
        pos = self.pos()
        self.expect(TokenKind.KEYWORD, "ic")
        name = self.expect(TokenKind.ID).text
        params: Tuple[ast.Binding, ...] = ()
        if self.check(TokenKind.LPAREN):
            params = self._parse_binding_list(TokenKind.LPAREN, TokenKind.RPAREN)
        self.expect(TokenKind.KEYWORD, "requires")
        body = self.parse_expr()
        return ast.ICDef(name, params, body, pos=pos)

    # -- bindings ------------------------------------------------------------

    def _parse_binding_list(
        self, open_kind: TokenKind, close_kind: TokenKind
    ) -> Tuple[ast.Binding, ...]:
        self.expect(open_kind)
        bindings: List[ast.Binding] = []
        if not self.check(close_kind):
            bindings.append(self.parse_binding())
            while self.match(TokenKind.COMMA):
                bindings.append(self.parse_binding())
        self.expect(close_kind)
        return tuple(bindings)

    def parse_binding(self) -> ast.Binding:
        pos = self.pos()
        tok = self.peek()
        if tok.kind is TokenKind.LBRACE and self.peek(1).kind is TokenKind.ID and (
            self.peek(2).kind is TokenKind.RBRACE
        ):
            self.advance()
            name = self.advance().text
            self.advance()
            return ast.RelVarBinding(name, pos=pos)
        if tok.kind is TokenKind.TUPLEID:
            self.advance()
            return ast.TupleVarBinding(tok.text, pos=pos)
        if tok.kind is TokenKind.TUPLEWILD:
            self.advance()
            return ast.TupleWildcardBinding(pos=pos)
        if tok.kind is TokenKind.UNDERSCORE:
            self.advance()
            return ast.WildcardBinding(pos=pos)
        if tok.kind is TokenKind.ID:
            if self.peek(1).kind is TokenKind.KEYWORD and self.peek(1).text == "in":
                name = self.advance().text
                self.advance()  # 'in'
                domain = self.parse_or()  # avoid consuming '|' of quantifiers
                return ast.InBinding(name, domain, pos=pos)
            nxt = self.peek(1).kind
            if nxt in (
                TokenKind.COMMA,
                TokenKind.RPAREN,
                TokenKind.RBRACKET,
                TokenKind.PIPE,
            ):
                self.advance()
                return ast.VarBinding(tok.text, pos=pos)
        # Anything else is a constant/computed binding (e.g. the 0 in
        # APSP({V},{E},x,y,0), or :Name symbols).
        expr = self.parse_or()
        return ast.ConstBinding(expr, pos=pos)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Node:
        return self.parse_where()

    def parse_where(self) -> ast.Node:
        expr = self.parse_iff()
        while self.check_kw("where"):
            pos = self.pos()
            self.advance()
            cond = self.parse_iff()
            expr = ast.WhereExpr(expr, cond, pos=pos)
        return expr

    def parse_iff(self) -> ast.Node:
        lhs = self.parse_implies()
        while self.check_kw("iff"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_implies()
            lhs = ast.Iff(lhs, rhs, pos=pos)
        return lhs

    def parse_implies(self) -> ast.Node:
        lhs = self.parse_xor()
        if self.check_kw("implies"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_implies()  # right-associative
            return ast.Implies(lhs, rhs, pos=pos)
        return lhs

    def parse_xor(self) -> ast.Node:
        lhs = self.parse_or()
        while self.check_kw("xor"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_or()
            lhs = ast.Xor(lhs, rhs, pos=pos)
        return lhs

    def parse_or(self) -> ast.Node:
        lhs = self.parse_and()
        while self.check_kw("or"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_and()
            lhs = ast.Or(lhs, rhs, pos=pos)
        return lhs

    def parse_and(self) -> ast.Node:
        lhs = self.parse_not()
        while self.check_kw("and"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_not()
            lhs = ast.And(lhs, rhs, pos=pos)
        return lhs

    def parse_not(self) -> ast.Node:
        if self.check_kw("not"):
            pos = self.pos()
            self.advance()
            return ast.Not(self.parse_not(), pos=pos)
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Node:
        lhs = self.parse_override()
        tok = self.peek()
        if tok.kind is TokenKind.OP and tok.text in _COMPARISON_OPS:
            pos = self.pos()
            op = self.advance().text
            rhs = self.parse_override()
            return ast.Compare(op, lhs, rhs, pos=pos)
        return lhs

    def parse_override(self) -> ast.Node:
        lhs = self.parse_additive()
        while self.check(TokenKind.OP, "<++"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_additive()
            lhs = ast.LeftOverride(lhs, rhs, pos=pos)
        return lhs

    def parse_additive(self) -> ast.Node:
        lhs = self.parse_multiplicative()
        while self.peek().kind is TokenKind.OP and self.peek().text in ("+", "-"):
            pos = self.pos()
            op = self.advance().text
            rhs = self.parse_multiplicative()
            lhs = ast.BinOp(op, lhs, rhs, pos=pos)
        return lhs

    def parse_multiplicative(self) -> ast.Node:
        lhs = self.parse_power()
        while self.peek().kind is TokenKind.OP and self.peek().text in ("*", "/", "%"):
            pos = self.pos()
            op = self.advance().text
            rhs = self.parse_power()
            lhs = ast.BinOp(op, lhs, rhs, pos=pos)
        return lhs

    def parse_power(self) -> ast.Node:
        lhs = self.parse_unary()
        if self.check(TokenKind.OP, "^"):
            pos = self.pos()
            self.advance()
            rhs = self.parse_power()  # right-associative
            return ast.BinOp("^", lhs, rhs, pos=pos)
        return lhs

    def parse_unary(self) -> ast.Node:
        if self.check(TokenKind.OP, "-"):
            pos = self.pos()
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, ast.Const) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Const(-operand.value, pos=pos)
            return ast.Neg(operand, pos=pos)
        return self.parse_dot()

    def parse_dot(self) -> ast.Node:
        lhs = self.parse_postfix()
        while self.check(TokenKind.OP, "."):
            pos = self.pos()
            self.advance()
            rhs = self.parse_postfix()
            lhs = ast.DotJoin(lhs, rhs, pos=pos)
        return lhs

    def parse_postfix(self) -> ast.Node:
        expr = self.parse_primary()
        while True:
            if self.check(TokenKind.LBRACKET):
                pos = self.pos()
                args = self._parse_argument_list(TokenKind.LBRACKET, TokenKind.RBRACKET)
                expr = ast.Application(expr, args, partial=True, pos=pos)
            elif self.check(TokenKind.LPAREN) and self._application_follows(expr):
                pos = self.pos()
                args = self._parse_argument_list(TokenKind.LPAREN, TokenKind.RPAREN)
                expr = ast.Application(expr, args, partial=False, pos=pos)
            else:
                return expr

    def _application_follows(self, expr: ast.Node) -> bool:
        """A ``(`` directly after a completed expression is full application.

        The only exception we must avoid is treating an abstraction head
        ``(x, y) :`` as an argument list of the preceding expression — that
        cannot occur because abstractions begin primaries, not postfixes.
        """
        # Const is included because single-item braces collapse:
        # {(9)}(x) parses the target to Const(9) before the application.
        return isinstance(
            expr,
            (ast.Ref, ast.Application, ast.Abstraction, ast.UnionExpr,
             ast.Annotated, ast.ProductExpr, ast.WhereExpr, ast.DotJoin,
             ast.LeftOverride, ast.Const),
        )

    def _parse_argument_list(
        self, open_kind: TokenKind, close_kind: TokenKind
    ) -> Tuple[ast.Node, ...]:
        self.expect(open_kind)
        args: List[ast.Node] = []
        if not self.check(close_kind):
            args.append(self.parse_argument())
            while self.match(TokenKind.COMMA):
                args.append(self.parse_argument())
        self.expect(close_kind)
        return tuple(args)

    def parse_argument(self) -> ast.Node:
        pos = self.pos()
        if self.check(TokenKind.UNDERSCORE):
            self.advance()
            return ast.Wildcard(pos=pos)
        if self.check(TokenKind.TUPLEWILD):
            self.advance()
            return ast.TupleWildcard(pos=pos)
        if self.check(TokenKind.QMARK_BRACE):
            self.advance()
            inner = self._parse_union_items(pos)
            return ast.Annotated(inner, second_order=False, pos=pos)
        if self.check(TokenKind.AMP_BRACE):
            self.advance()
            inner = self._parse_union_items(pos)
            return ast.Annotated(inner, second_order=True, pos=pos)
        # Abstractions are legal arguments: sum[[k] : ...], min[(j) : ...]
        return self.parse_expr()

    def _parse_union_items(self, pos: ast.Pos) -> ast.Node:
        """Parse ``e1; ...; en}`` after an already-consumed ``?{``/``&{``."""
        if self.match(TokenKind.RBRACE):
            return ast.UnionExpr((), pos=pos)
        items = [self.parse_expr()]
        while self.match(TokenKind.SEMI):
            items.append(self.parse_expr())
        self.expect(TokenKind.RBRACE)
        if len(items) == 1:
            return items[0]
        return ast.UnionExpr(tuple(items), pos=pos)

    # -- primaries -----------------------------------------------------------

    def parse_primary(self) -> ast.Node:
        pos = self.pos()
        tok = self.peek()

        if tok.kind is TokenKind.INT or tok.kind is TokenKind.FLOAT:
            self.advance()
            return ast.Const(tok.value, pos=pos)
        if tok.kind is TokenKind.STRING:
            self.advance()
            return ast.Const(tok.value, pos=pos)
        if tok.kind is TokenKind.SYMBOL:
            self.advance()
            return ast.Const(Symbol(tok.value), pos=pos)
        if tok.kind is TokenKind.KEYWORD and tok.text in ("true", "false"):
            self.advance()
            return ast.Const(tok.text == "true", pos=pos)
        if tok.kind is TokenKind.ID:
            self.advance()
            return ast.Ref(tok.text, pos=pos)
        if tok.kind is TokenKind.TUPLEID:
            self.advance()
            return ast.TupleRef(tok.text, pos=pos)
        if tok.kind is TokenKind.UNDERSCORE:
            self.advance()
            return ast.Wildcard(pos=pos)
        if tok.kind is TokenKind.TUPLEWILD:
            self.advance()
            return ast.TupleWildcard(pos=pos)
        if tok.kind is TokenKind.KEYWORD and tok.text in ("exists", "forall"):
            return self.parse_quantifier()
        if tok.kind is TokenKind.LPAREN:
            return self.parse_paren()
        if tok.kind is TokenKind.LBRACKET:
            return self.parse_bracket_abstraction()
        if tok.kind is TokenKind.LBRACE:
            return self.parse_brace()
        if tok.kind is TokenKind.QMARK_BRACE or tok.kind is TokenKind.AMP_BRACE:
            # Annotated expressions occasionally appear outside argument
            # lists (e.g. reduce[&{add}, &{A}] arguments re-parsed standalone).
            return self.parse_argument()
        raise ParseError("expected an expression", tok)

    def parse_quantifier(self) -> ast.Node:
        pos = self.pos()
        kw = self.advance().text  # 'exists' | 'forall'
        self.expect(TokenKind.LPAREN)
        if self.check(TokenKind.LPAREN):
            bindings = self._parse_binding_list(TokenKind.LPAREN, TokenKind.RPAREN)
        else:
            items: List[ast.Binding] = [self.parse_binding()]
            while self.match(TokenKind.COMMA):
                items.append(self.parse_binding())
            bindings = tuple(items)
        self.expect(TokenKind.PIPE)
        body = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        if kw == "exists":
            return ast.Exists(bindings, body, pos=pos)
        return ast.ForAll(bindings, body, pos=pos)

    def parse_paren(self) -> ast.Node:
        pos = self.pos()
        if self._delimited_abstraction_follows():
            bindings = self._parse_binding_list(TokenKind.LPAREN, TokenKind.RPAREN)
            self.expect(TokenKind.COLON)
            body = self.parse_expr()
            return ast.Abstraction(bindings, body, brackets=False, pos=pos)
        self.expect(TokenKind.LPAREN)
        if self.check(TokenKind.RPAREN):
            # '()' — the empty tuple, i.e. the unit relation {()}... but bare
            # '()' only appears inside braces; treat as unit product.
            self.advance()
            return ast.ProductExpr((), pos=pos)
        items = [self.parse_expr()]
        while self.match(TokenKind.COMMA):
            items.append(self.parse_expr())
        self.expect(TokenKind.RPAREN)
        if len(items) == 1:
            return items[0]
        return ast.ProductExpr(tuple(items), pos=pos)

    def parse_bracket_abstraction(self) -> ast.Node:
        pos = self.pos()
        if self._delimited_abstraction_follows():
            bindings = self._parse_binding_list(TokenKind.LBRACKET, TokenKind.RBRACKET)
            self.expect(TokenKind.COLON)
            body = self.parse_expr()
            return ast.Abstraction(bindings, body, brackets=True, pos=pos)
        raise ParseError("bracketed expression must be an abstraction", self.peek())

    def parse_brace(self) -> ast.Node:
        pos = self.pos()
        self.expect(TokenKind.LBRACE)
        if self.match(TokenKind.RBRACE):
            return ast.UnionExpr((), pos=pos)  # {} — the empty relation
        items = [self.parse_expr()]
        while self.match(TokenKind.SEMI):
            items.append(self.parse_expr())
        self.expect(TokenKind.RBRACE)
        if len(items) == 1:
            return items[0]
        return ast.UnionExpr(tuple(items), pos=pos)


def parse_program(source: str) -> ast.Program:
    """Parse a full Rel program (sequence of ``def``/``ic`` declarations)."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Node:
    """Parse a single Rel expression (for queries and tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    if not parser.check(TokenKind.EOF):
        raise ParseError("unexpected trailing input", parser.peek())
    return expr
