"""Tokenizer for Rel surface syntax.

Handles the lexical quirks of the language:

- ``x...`` tuple variables and ``_...`` tuple wildcards (the three dots
  attach to the preceding identifier with no whitespace);
- ``:Name`` symbols (colon immediately followed by an identifier), as used
  for passing relation names to ``insert``/``delete`` — distinguished from
  the rule-body separator ``:`` which is followed by whitespace or a
  non-identifier character;
- ``<++`` (left override), ``!=``, ``<=``, ``>=`` multi-character operators;
- ``.`` both as the dot-join operator and inside float literals;
- ``//`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List


class LexError(SyntaxError):
    """Raised on malformed input with position information."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (at {line}:{col})")
        self.line = line
        self.col = col


class TokenKind(enum.Enum):
    ID = "ID"
    TUPLEID = "TUPLEID"  # x...
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    SYMBOL = "SYMBOL"  # :Name
    KEYWORD = "KEYWORD"
    OP = "OP"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    PIPE = "|"
    UNDERSCORE = "_"
    TUPLEWILD = "_..."
    QMARK_BRACE = "?{"
    AMP_BRACE = "&{"
    EOF = "EOF"


KEYWORDS = {
    "def",
    "ic",
    "requires",
    "and",
    "or",
    "not",
    "exists",
    "forall",
    "implies",
    "iff",
    "xor",
    "where",
    "in",
    "true",
    "false",
    "from",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = ["<++", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "^", "."]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: Any
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


class _Scanner:
    """Character-level scanner with position tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def starts_with(self, text: str) -> bool:
        return self.source.startswith(text, self.pos)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    sc = _Scanner(source)
    while True:
        _skip_trivia(sc)
        if sc.at_end():
            yield Token(TokenKind.EOF, "", None, sc.line, sc.col)
            return
        line, col = sc.line, sc.col
        ch = sc.peek()

        if ch in _IDENT_START:
            yield _identifier(sc, line, col)
            continue
        if ch.isdigit():
            yield _number(sc, line, col)
            continue
        if ch == '"':
            yield _string(sc, line, col)
            continue
        if ch == "?" and sc.peek(1) == "{":
            sc.advance(2)
            yield Token(TokenKind.QMARK_BRACE, "?{", None, line, col)
            continue
        if ch == "&" and sc.peek(1) == "{":
            sc.advance(2)
            yield Token(TokenKind.AMP_BRACE, "&{", None, line, col)
            continue
        if ch == ":":
            nxt = sc.peek(1)
            if nxt in _IDENT_START and nxt != "_":
                sc.advance(1)
                tok = _identifier(sc, line, col)
                yield Token(TokenKind.SYMBOL, ":" + tok.text, tok.text, line, col)
                continue
            sc.advance(1)
            yield Token(TokenKind.COLON, ":", None, line, col)
            continue

        simple = {
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            "[": TokenKind.LBRACKET,
            "]": TokenKind.RBRACKET,
            "{": TokenKind.LBRACE,
            "}": TokenKind.RBRACE,
            ",": TokenKind.COMMA,
            ";": TokenKind.SEMI,
            "|": TokenKind.PIPE,
        }
        if ch in simple:
            sc.advance(1)
            yield Token(simple[ch], ch, None, line, col)
            continue

        for op in _OPERATORS:
            if sc.starts_with(op):
                sc.advance(len(op))
                yield Token(TokenKind.OP, op, None, line, col)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)


def _skip_trivia(sc: _Scanner) -> None:
    while not sc.at_end():
        ch = sc.peek()
        if ch in " \t\r\n":
            sc.advance(1)
        elif sc.starts_with("//"):
            while not sc.at_end() and sc.peek() != "\n":
                sc.advance(1)
        elif sc.starts_with("/*"):
            start_line, start_col = sc.line, sc.col
            sc.advance(2)
            while not sc.starts_with("*/"):
                if sc.at_end():
                    raise LexError("unterminated block comment", start_line, start_col)
                sc.advance(1)
            sc.advance(2)
        else:
            return


def _identifier(sc: _Scanner, line: int, col: int) -> Token:
    start = sc.pos
    while not sc.at_end() and sc.peek() in _IDENT_CONT:
        sc.advance(1)
    text = sc.source[start : sc.pos]
    if sc.starts_with("..."):
        sc.advance(3)
        if text == "_":
            return Token(TokenKind.TUPLEWILD, "_...", None, line, col)
        return Token(TokenKind.TUPLEID, text, text, line, col)
    if text == "_":
        return Token(TokenKind.UNDERSCORE, "_", None, line, col)
    if text in KEYWORDS:
        return Token(TokenKind.KEYWORD, text, text, line, col)
    return Token(TokenKind.ID, text, text, line, col)


def _number(sc: _Scanner, line: int, col: int) -> Token:
    start = sc.pos
    while not sc.at_end() and sc.peek().isdigit():
        sc.advance(1)
    is_float = False
    # A '.' is part of the number only if followed by a digit — this keeps
    # `R.1`-style dot joins and `x...` unambiguous.
    if sc.peek() == "." and sc.peek(1).isdigit():
        is_float = True
        sc.advance(1)
        while not sc.at_end() and sc.peek().isdigit():
            sc.advance(1)
    if sc.peek() in ("e", "E") and (
        sc.peek(1).isdigit() or (sc.peek(1) in "+-" and sc.peek(2).isdigit())
    ):
        is_float = True
        sc.advance(1)
        if sc.peek() in "+-":
            sc.advance(1)
        while not sc.at_end() and sc.peek().isdigit():
            sc.advance(1)
    text = sc.source[start : sc.pos]
    if is_float:
        return Token(TokenKind.FLOAT, text, float(text), line, col)
    return Token(TokenKind.INT, text, int(text), line, col)


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}


def _string(sc: _Scanner, line: int, col: int) -> Token:
    sc.advance(1)  # opening quote
    chars: List[str] = []
    while True:
        if sc.at_end():
            raise LexError("unterminated string literal", line, col)
        ch = sc.advance(1)
        if ch == '"':
            break
        if ch == "\\":
            esc = sc.advance(1)
            if esc not in _ESCAPES:
                raise LexError(f"invalid escape sequence \\{esc}", sc.line, sc.col)
            chars.append(_ESCAPES[esc])
        else:
            chars.append(ch)
    text = "".join(chars)
    return Token(TokenKind.STRING, f'"{text}"', text, line, col)
