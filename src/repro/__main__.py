"""Command-line interface: run Rel programs and queries over a Session.

Usage::

    python -m repro program.rel                 # run; print `output`
    python -m repro program.rel -q 'TC[E]'      # evaluate a query too
    python -m repro -e 'def output(x) : {(1);(2)}(x)'
    python -m repro program.rel --relation TC_E # print a named relation
    echo 'def output(x): P(x)' | python -m repro -  # read from stdin

Base relations can be loaded from simple TSV files with ``--load NAME=file``
(tab-separated; values parsed as int/float when possible, strings otherwise).

The CLI drives one :class:`repro.Session`; ``--repl`` keeps it open for an
interactive session with incremental re-evaluation — definitions added at
the prompt only dirty the strata that depend on them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import RelError, Relation, Session, connect
from repro.model.values import value_repr


def _parse_value(text: str):
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    if text == "true":
        return True
    if text == "false":
        return False
    return text


def load_tsv(path: Path) -> Relation:
    """Load a relation from a TSV file (one tuple per line)."""
    tuples = []
    with open(path) as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            tuples.append(tuple(_parse_value(v) for v in line.split("\t")))
    return Relation(tuples)


def print_relation(name: str, relation: Relation) -> None:
    print(f"{name} ({len(relation)} tuples):")
    for tup in relation.sorted_tuples():
        print("  (" + ", ".join(value_repr(v) for v in tup) + ")")


def _thread_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"thread count must be >= 0, got {value}")
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run Rel programs (SIGMOD 2025 reproduction engine).",
    )
    parser.add_argument("program", nargs="?",
                        help="a .rel source file, or - for stdin")
    parser.add_argument("-e", "--source", action="append", default=[],
                        help="inline Rel source (repeatable)")
    parser.add_argument("-q", "--query", action="append", default=[],
                        help="Rel expression to evaluate (repeatable)")
    parser.add_argument("--relation", action="append", default=[],
                        help="print a named relation (repeatable)")
    parser.add_argument("--load", action="append", default=[],
                        metavar="NAME=FILE",
                        help="load a base relation from a TSV file")
    parser.add_argument("--no-stdlib", action="store_true",
                        help="do not load the standard library")
    parser.add_argument("--repl", action="store_true",
                        help="interactive session after loading the program")
    parser.add_argument("--threads", type=_thread_count, default=0,
                        metavar="N",
                        help="evaluate -q queries concurrently through a "
                             "QueryServer with N snapshot-reader threads")
    args = parser.parse_args(argv)

    session = connect(load_stdlib=not args.no_stdlib, threads=args.threads)
    try:
        for spec in args.load:
            name, _, path = spec.partition("=")
            if not path:
                parser.error(f"--load expects NAME=FILE, got {spec!r}")
            session.define(name, load_tsv(Path(path)))
        if args.program == "-":
            session.load(sys.stdin.read())
        elif args.program:
            session.load(Path(args.program).read_text())
        for source in args.source:
            session.load(source)

        output = session.output()
        if output or "output" in session.program.closures:
            print_relation("output", output)
        for name in args.relation:
            print_relation(name, session.relation(name))
        if args.threads and args.query:
            # Serve the queries through the thread-pool front end: each
            # runs against one consistent snapshot of the loaded program.
            with session:
                server = session.server
                futures = [(q, server.submit(q)) for q in args.query]
                for query, future in futures:
                    print_relation(query, future.result())
        else:
            for query in args.query:
                print_relation(query, session.execute(query))
    except RelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.repl:
        repl(session)
    return 0


def repl(session: Session) -> None:
    """A line-oriented interactive session over one persistent Session.

    Lines starting with ``def`` or ``ic`` extend the session; anything else
    is evaluated as a query expression. Because the session is long-lived,
    each definition only invalidates the strata that depend on it — results
    for unrelated relations are served from the retained extents.
    ``:quit`` exits, ``:relations`` lists defined names.
    """
    print("Rel repl — def/ic to define, expressions to query, :quit to exit")
    while True:
        try:
            line = input("rel> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return
        if not line:
            continue
        if line in (":quit", ":q", ":exit"):
            return
        if line == ":relations":
            print("  " + ", ".join(session.names()))
            continue
        try:
            if line.startswith(("def ", "ic ")):
                session.load(line)
                print("  ok")
            else:
                print_relation(line, session.execute(line))
        except (RelError, SyntaxError) as exc:
            print(f"  error: {exc}")


if __name__ == "__main__":
    sys.exit(main())
