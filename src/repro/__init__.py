"""repro — a from-scratch Python implementation of the Rel programming
language for relational data.

This package reproduces "Rel: A Programming Language for Relational Data"
(SIGMOD 2025): the language frontend (Figure 2), the formal semantics
(Figures 3–4), graph normal form and the database layer (Sections 2–3),
programming-in-the-large features (Section 4), the standard/RA/LA/graph
libraries written in Rel itself (Section 5), and the relational knowledge
graph layer (Section 6).

Quickstart::

    from repro import RelProgram, Relation

    program = RelProgram()
    program.define("Edge", Relation([(1, 2), (2, 3)]))
    program.add_source('''
        def Path(x, y) : Edge(x, y)
        def Path(x, y) : exists((z) | Edge(x, z) and Path(z, y))
    ''')
    print(program.relation("Path"))
"""

from repro.engine import (
    ConvergenceError,
    DispatchError,
    EvaluationError,
    RelError,
    RelProgram,
    SafetyError,
    UnknownRelationError,
)
from repro.model import Entity, EntityRegistry, Relation, Symbol, relation, singleton

__version__ = "1.0.0"

__all__ = [
    "ConvergenceError",
    "DispatchError",
    "Entity",
    "EntityRegistry",
    "EvaluationError",
    "RelError",
    "RelProgram",
    "Relation",
    "SafetyError",
    "Symbol",
    "UnknownRelationError",
    "__version__",
    "relation",
    "singleton",
]
