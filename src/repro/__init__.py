"""repro — a from-scratch Python implementation of the Rel programming
language for relational data.

This package reproduces "Rel: A Programming Language for Relational Data"
(SIGMOD 2025): the language frontend (Figure 2), the formal semantics
(Figures 3–4), graph normal form and the database layer (Sections 2–3),
programming-in-the-large features (Section 4), the standard/RA/LA/graph
libraries written in Rel itself (Section 5), and the relational knowledge
graph layer (Section 6).

Quickstart — the canonical entry point is :func:`repro.connect`, which
opens a :class:`~repro.api.Session` (one database, one rule catalog, one
long-lived incremental evaluation state)::

    import repro

    session = repro.connect()
    session.define("Edge", [(1, 2), (2, 3)])
    session.load('''
        def Path(x, y) : Edge(x, y)
        def Path(x, y) : exists((z) | Edge(x, z) and Path(z, y))
    ''')
    print(session.execute("Path"))

    paths_from = session.query("Path[1]")   # prepared: parse once
    print(paths_from.run())                 # execute many
    session.insert("Edge", [(3, 4)])        # dirties only Path's stratum
    print(paths_from.run())

The lower-level :class:`RelProgram` remains available for direct engine
access; see README.md for the migration table.
"""

from repro.engine import (
    ConvergenceError,
    DispatchError,
    EvalBudget,
    EvaluationError,
    QueryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
    RelError,
    RelProgram,
    SafetyError,
    UnknownRelationError,
)
from repro.api import (PreparedQuery, Session, Snapshot, SnapshotQuery,
                       connect)
from repro.server import AdmissionError, QueryServer, ServerClosedError
from repro.model import Entity, EntityRegistry, Relation, Symbol, relation, singleton

__version__ = "1.1.0"

__all__ = [
    "AdmissionError",
    "ConvergenceError",
    "DispatchError",
    "Entity",
    "EntityRegistry",
    "EvalBudget",
    "EvaluationError",
    "PreparedQuery",
    "QueryBudgetError",
    "QueryCancelledError",
    "QueryServer",
    "QueryTimeoutError",
    "RelError",
    "RelProgram",
    "Relation",
    "SafetyError",
    "ServerClosedError",
    "Session",
    "Snapshot",
    "SnapshotQuery",
    "Symbol",
    "UnknownRelationError",
    "__version__",
    "connect",
    "relation",
    "singleton",
]
