"""A threaded query server over one Session: snapshot reads, queued writes.

The paper's system serves a relational knowledge graph to many concurrent
users; :class:`QueryServer` is the in-process shape of that front end:

- **reads** — :meth:`submit` parses each query once (per source text),
  hands it to a thread pool, and evaluates it against the session's
  current :class:`~repro.api.Snapshot`. Readers share the warm plan, trie,
  and hash-index caches read-only and never block on writers: a write in
  flight is simply not yet visible.
- **writes** — :meth:`insert` / :meth:`delete` / :meth:`define` /
  :meth:`load` / :meth:`transact` enqueue onto a single writer thread.
  Consecutive insert/delete requests are **coalesced**: the writer drains
  the queue, folds them into per-relation net contents, and applies the
  whole batch through :meth:`Session.apply_batch` — one incremental-
  maintenance pass (the PR-3 delta path) and one atomic snapshot publish
  for the entire burst. Every enqueued operation gets a
  :class:`~concurrent.futures.Future` resolved when its batch commits.

Consistency model: writes are serialized and applied in submission order;
a read observes the latest snapshot *published when the read executes*.
For read-your-writes, wait on the write's future (or :meth:`flush`) before
submitting the read.

Quickstart::

    import repro

    session = repro.connect(threads=4)
    session.load("def Path(x, y) : E(x, y)")
    server = session.server
    server.insert("E", [(1, 2)]).result()     # write barrier
    future = server.submit("Path[1]")         # concurrent snapshot read
    print(future.result())                    # {(2,)}
    session.close()
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional

from repro.engine.budget import EvalBudget
from repro.engine.errors import QueryBudgetError, QueryTimeoutError
from repro.lang import ast, parse_expression
from repro.model.relation import Relation


class ServerClosedError(RuntimeError):
    """Raised when submitting to a server that has been shut down."""


class AdmissionError(RuntimeError):
    """A write was refused by the admission policy: the bounded write
    queue was full (``admission="reject"``) or stayed full past the
    admission timeout (``admission="timeout"``). The op was *not*
    enqueued; the caller decides whether to retry, shed, or block."""

_ADMISSION_POLICIES = ("block", "reject", "timeout")


class _WriteOp:
    """One queued write: an op kind, its arguments, and the caller's future."""

    __slots__ = ("kind", "name", "payload", "future")

    def __init__(self, kind: str, name: Optional[str], payload: Any) -> None:
        self.kind = kind
        self.name = name
        self.payload = payload
        self.future: Future = Future()


_CLOSE = object()


class QueryServer:
    """A thread-pool front end over one :class:`~repro.api.Session`."""

    def __init__(self, session, threads: int = 4,
                 name: str = "repro-server",
                 queue_limit: Optional[int] = None,
                 admission: str = "block",
                 admission_timeout: float = 1.0) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if admission not in _ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; expected one of "
                + ", ".join(repr(p) for p in _ADMISSION_POLICIES))
        if admission_timeout <= 0:
            raise ValueError(
                f"admission_timeout must be positive, got {admission_timeout}")
        self.session = session
        self.threads = threads
        self.queue_limit = queue_limit
        self.admission = admission
        self.admission_timeout = admission_timeout
        self._closed = False
        # drain=False close: the writer resolves remaining queued futures
        # with ServerClosedError instead of applying them.
        self._abort = False
        self._readers = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix=f"{name}-read")
        # Bounded when queue_limit is set: admission control happens at
        # the enqueue site, under the write gate. maxsize=0 = unbounded,
        # the PR-5 behavior.
        self._writes: "queue.Queue[Any]" = queue.Queue(
            maxsize=queue_limit or 0)
        # Guards the closed-flag/enqueue pair: once close() has queued the
        # _CLOSE sentinel, no write op can slip in behind it (an op that
        # lost that race would never resolve its future).
        self._write_gate = threading.Lock()
        self._prepared: Dict[str, ast.Node] = {}
        self._prepared_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {"queries": 0, "write_ops": 0, "write_batches": 0,
                       "coalesced_ops": 0, "timeouts": 0, "budget_aborts": 0,
                       "rejected": 0, "queue_depth_max": 0}
        self._writer = threading.Thread(
            target=self._write_loop, name=f"{name}-write", daemon=True)
        self._writer.start()

    # -- reads -------------------------------------------------------------

    #: Cap for the per-source parse cache (evicts oldest half on overflow,
    #: like every other long-lived cache in the engine).
    PREPARED_LIMIT = 1024

    def _node(self, source: str) -> ast.Node:
        node = self._prepared.get(source)
        if node is None:
            parsed = parse_expression(source)
            with self._prepared_lock:
                if len(self._prepared) >= self.PREPARED_LIMIT:
                    for old_key in list(self._prepared)[
                            : self.PREPARED_LIMIT // 2]:
                        self._prepared.pop(old_key, None)
                node = self._prepared.setdefault(source, parsed)
        return node

    def submit(self, query: str,
               params: Optional[Mapping[str, Any]] = None,
               on_result: Optional[Callable[[Relation], Any]] = None,
               *,
               deadline: Optional[float] = None,
               budget: Optional[EvalBudget] = None,
               max_rows: Optional[int] = None,
               max_iterations: Optional[int] = None) -> Future:
        """Evaluate ``query`` on the pool against the current snapshot.

        ``params`` are per-call environment bindings (Relations, scalars,
        or iterables of tuples) — they persist nowhere, so one prepared
        query serves many concurrent parameterizations. ``on_result``, if
        given, runs in the worker thread with the result before the future
        resolves (the hook for response serialization / streaming the
        result back to a client).

        ``deadline`` / ``max_rows`` / ``max_iterations`` (or an explicit
        ``budget=`` :class:`~repro.engine.budget.EvalBudget`) bound the
        evaluation. The deadline clock starts *now*, at submission, so
        pool queue wait counts against it — a saturated server times out
        rather than silently growing its backlog. Exceeding a budget
        *cancels the underlying evaluation* cooperatively (the worker
        aborts at its next budget check and discards partial state) and
        the future raises the typed error. The budget rides on the future
        as ``future.eval_budget``; calling its ``cancel()`` aborts a
        running evaluation from any thread (see :meth:`cancel`)."""
        if self._closed:
            raise ServerClosedError("submit on a closed QueryServer")
        node = self._node(query)
        if budget is not None:
            if (deadline is not None or max_rows is not None
                    or max_iterations is not None):
                raise ValueError(
                    "pass either budget= or deadline=/max_rows="
                    "/max_iterations=, not both")
        elif (deadline is not None or max_rows is not None
                or max_iterations is not None):
            budget = EvalBudget(deadline=deadline, max_rows=max_rows,
                                max_iterations=max_iterations)
        frozen = dict(params) if params else None
        try:
            future = self._readers.submit(
                self._read, node, frozen, on_result, budget)
        except RuntimeError as exc:
            # Lost the race against close(): the pool refused the task.
            raise ServerClosedError("submit on a closed QueryServer") from exc
        if budget is not None:
            future.eval_budget = budget
        return future

    def cancel(self, future: Future) -> None:
        """Best-effort cancellation of a submitted read: cancels the
        future if it has not started, and cancels its budget (if the read
        was submitted with one) so a *running* evaluation aborts at its
        next cooperative check with
        :class:`~repro.engine.errors.QueryCancelledError`."""
        future.cancel()
        budget = getattr(future, "eval_budget", None)
        if budget is not None:
            budget.cancel()

    def _read(self, node: ast.Node, params, on_result,
              budget: Optional[EvalBudget] = None) -> Relation:
        snapshot = self.session.snapshot()
        try:
            result = snapshot.execute_node(node, params, budget)
        except QueryTimeoutError:
            with self._stats_lock:
                self._stats["timeouts"] += 1
            raise
        except QueryBudgetError:
            # Row/iteration limits and cross-thread cancels both land
            # here (QueryCancelledError subclasses QueryBudgetError).
            with self._stats_lock:
                self._stats["budget_aborts"] += 1
            raise
        with self._stats_lock:
            self._stats["queries"] += 1
        if on_result is not None:
            on_result(result)
        return result

    def execute(self, query: str,
                params: Optional[Mapping[str, Any]] = None,
                **limits: Any) -> Relation:
        """Synchronous :meth:`submit` (accepts the same budget knobs)."""
        return self.submit(query, params, **limits).result()

    # -- writes ------------------------------------------------------------

    def _enqueue(self, op: _WriteOp) -> Future:
        """Admission-controlled enqueue. With a bounded queue, a full
        queue either blocks the producer (``"block"`` — backpressure
        propagates to the caller), refuses immediately (``"reject"``), or
        blocks up to ``admission_timeout`` seconds (``"timeout"``); the
        refused op raises :class:`AdmissionError` and is never queued.
        Blocking happens while holding the write gate, so later producers
        queue up behind the gate in arrival order — the writer thread
        never takes the gate and keeps draining, which is what guarantees
        a blocked producer (and a close() behind it) always makes
        progress."""
        with self._write_gate:
            if self._closed:
                raise ServerClosedError("write on a closed QueryServer")
            try:
                if self.queue_limit is None or self.admission == "block":
                    self._writes.put(op)
                elif self.admission == "reject":
                    self._writes.put_nowait(op)
                else:  # "timeout"
                    self._writes.put(op, timeout=self.admission_timeout)
            except queue.Full:
                with self._stats_lock:
                    self._stats["rejected"] += 1
                raise AdmissionError(
                    f"write queue full ({self.queue_limit} ops, "
                    f"admission={self.admission!r})") from None
            depth = self._writes.qsize()
        with self._stats_lock:
            if depth > self._stats["queue_depth_max"]:
                self._stats["queue_depth_max"] = depth
        return op.future

    def insert(self, name: str, tuples) -> Future:
        """Queue an insert; resolves (with the session) after its batch
        commits. Consecutive inserts/deletes coalesce into one
        maintenance pass."""
        return self._enqueue(_WriteOp("insert", name, Relation(tuples)))

    def delete(self, name: str, tuples) -> Future:
        """Queue a delete (same batching as :meth:`insert`)."""
        return self._enqueue(_WriteOp("delete", name, Relation(tuples)))

    def define(self, name: str, relation) -> Future:
        """Queue a full base-relation replacement."""
        return self._enqueue(_WriteOp("define", name, relation))

    def load(self, source: str) -> Future:
        """Queue Rel declarations (rules / integrity constraints)."""
        return self._enqueue(_WriteOp("load", None, source))

    def transact(self, source: str) -> Future:
        """Queue a control-relation transaction; the future resolves with
        its :class:`~repro.db.transaction.TransactionResult`."""
        return self._enqueue(_WriteOp("transact", None, source))

    def flush(self) -> None:
        """Barrier: block until every write queued so far has committed —
        and, on a durable session, been fsync'd to the write-ahead log
        (under the ``"always"``/``"batch"`` policies)."""
        self._enqueue(_WriteOp("barrier", None, None)).result()

    # -- the writer thread -------------------------------------------------

    def _write_loop(self) -> None:
        while True:
            op = self._writes.get()
            if op is _CLOSE:
                return
            batch = [op]
            while True:
                try:
                    nxt = self._writes.get_nowait()
                except queue.Empty:
                    break
                if nxt is _CLOSE:
                    self._finish(batch)
                    return
                batch.append(nxt)
            self._finish(batch)

    def _finish(self, batch) -> None:
        """Apply the batch — or, after close(drain=False), resolve every
        queued future with ServerClosedError instead. Either way no
        accepted op's future is left pending."""
        if self._abort:
            for op in batch:
                if op.future.set_running_or_notify_cancel():
                    op.future.set_exception(ServerClosedError(
                        "QueryServer closed without draining; "
                        "queued write abandoned"))
            return
        self._apply(batch)

    def _apply(self, batch) -> None:
        """Apply one drained batch in submission order, coalescing runs of
        insert/delete into single atomic :meth:`Session.apply_batch`
        calls."""
        with self._stats_lock:
            self._stats["write_ops"] += len(batch)
            self._stats["write_batches"] += 1
        i = 0
        while i < len(batch):
            if batch[i].kind in ("insert", "delete"):
                j = i
                while j < len(batch) and batch[j].kind in ("insert", "delete"):
                    j += 1
                self._apply_deltas(batch[i:j])
                i = j
            else:
                self._apply_one(batch[i])
                i += 1

    def _apply_deltas(self, group) -> None:
        """Coalesce one run of insert/delete ops into per-name net contents
        and commit them as a single batch (one maintenance pass, one
        snapshot publish)."""
        # Claim every future first: a cancelled op (pending Future) must be
        # skipped — not applied — and completing it later would raise
        # InvalidStateError out of the writer thread, killing the queue.
        group = [op for op in group
                 if op.future.set_running_or_notify_cancel()]
        if not group:
            return
        session = self.session
        with session._lock:
            try:
                # name → net contents; None = "still absent" (a delete on a
                # missing relation must not create it, matching
                # Session.delete's no-op semantics).
                updates: Dict[str, Optional[Relation]] = {}
                for op in group:
                    if op.name in updates:
                        current = updates[op.name]
                    else:
                        current = session.database[op.name] \
                            if op.name in session.database else None
                    if op.kind == "insert":
                        updates[op.name] = (op.payload if current is None
                                            else current.union(op.payload))
                    elif current is not None:
                        updates[op.name] = current.difference(op.payload)
                    else:
                        updates[op.name] = None
                session.apply_batch({name: rel for name, rel in
                                     updates.items() if rel is not None})
            except BaseException as exc:
                for op in group:
                    op.future.set_exception(exc)
                return
        if len(group) > 1:
            with self._stats_lock:
                self._stats["coalesced_ops"] += len(group) - 1
        for op in group:
            op.future.set_result(None)

    def _apply_one(self, op: _WriteOp) -> None:
        if not op.future.set_running_or_notify_cancel():
            return  # cancelled while queued: skip, don't apply
        try:
            if op.kind == "define":
                result = None
                self.session.define(op.name, op.payload)
            elif op.kind == "load":
                result = None
                self.session.load(op.payload)
            elif op.kind == "transact":
                result = self.session.transact(op.payload)
            elif op.kind == "barrier":
                # flush() doubles as the durability barrier: on a durable
                # session, every write committed before the barrier is
                # fsync'd (policy permitting) by the time the caller's
                # future resolves. Non-durable sessions: sync() is a no-op.
                self.session.sync()
                result = None
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown write op {op.kind!r}")
        except BaseException as exc:
            op.future.set_exception(exc)
        else:
            op.future.set_result(result)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; the session discards closed
        servers and builds a fresh one on the next :meth:`Session.serve`."""
        return self._closed

    def statistics(self) -> Dict[str, int]:
        """Server counters: queries served, write ops/batches, and how many
        write ops were absorbed into an earlier batch ("coalesced_ops").

        On a durable session the storage counters ride along under a
        ``storage_`` prefix (``storage_wal_appends``, …), so one poll of
        the serving surface answers both "how busy" and "how durable"."""
        with self._stats_lock:
            stats = dict(self._stats)
        for key, value in self.session.storage_statistics().items():
            stats[f"storage_{key}"] = value
        return stats

    def robustness_statistics(self) -> Dict[str, int]:
        """The resource-governance counters: ``timeouts`` (reads that hit
        their deadline), ``budget_aborts`` (row/iteration limits and
        cancels), ``rejected`` (writes refused by admission control),
        ``queue_depth_max`` (high-water mark of the write queue), and
        ``retries`` (storage-layer retried I/O operations — 0 on a
        non-durable session)."""
        with self._stats_lock:
            stats = {key: self._stats[key]
                     for key in ("timeouts", "budget_aborts", "rejected",
                                 "queue_depth_max")}
        stats["retries"] = \
            self.session.storage_statistics().get("retries", 0)
        return stats

    def close(self, wait: bool = True, drain: bool = True) -> None:
        """Stop the writer and shut the pool down; every accepted write's
        future resolves, with its result (``drain=True``, the default —
        queued batches still commit and reach the WAL) or with
        :class:`ServerClosedError` (``drain=False`` — queued-but-unapplied
        writes are abandoned; the op the writer is mid-apply still
        completes). In-flight reads always run to completion.

        Ordering is guaranteed by the write gate: every accepted write
        precedes the close sentinel in the queue, so its future resolves
        before the writer exits — no accepted op is ever dropped.
        Idempotent and safe under concurrent callers: one caller queues
        the sentinel, and every ``wait=True`` caller blocks until the
        writer has exited and the pool is down."""
        with self._write_gate:
            if not self._closed:
                self._closed = True
                if not drain:
                    self._abort = True
                # Blocking put: on a full bounded queue the writer is
                # still draining, so the sentinel always lands.
                self._writes.put(_CLOSE)
        if wait:
            self._writer.join()
        self._readers.shutdown(wait=wait)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"QueryServer({self.threads} threads, {state})"
