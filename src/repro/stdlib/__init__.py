"""The Rel standard library.

Following the paper's design philosophy (Section 5: "Growing the Language"),
the standard library is written *in Rel*, not in Python: aggregation is
defined from the single ``reduce`` primitive, relational algebra and linear
algebra are point-free second-order definitions, and the graph library
(transitive closure, APSP, PageRank) is plain recursive Rel.

The sources live in ``repro/stdlib/rel/*.rel`` and are loaded into every
:class:`repro.engine.RelProgram` unless ``load_stdlib=False``.
"""

from __future__ import annotations

import functools
from pathlib import Path

_REL_DIR = Path(__file__).parent / "rel"

#: Load order matters only for readability; definitions are order-independent
#: (Section 3.3: "The ordering of rules in Rel programs has no effect").
_SOURCES = ["stdlib.rel", "relalg.rel", "linalg.rel", "graphlib.rel",
            "strings.rel"]


@functools.lru_cache(maxsize=1)
def standard_library_source() -> str:
    """The concatenated Rel source of the standard library."""
    parts = []
    for name in _SOURCES:
        parts.append((_REL_DIR / name).read_text())
    return "\n".join(parts)


@functools.lru_cache(maxsize=None)
def library_source(name: str) -> str:
    """The source of one library file (``stdlib``, ``relalg``, ``linalg``,
    ``graphlib``)."""
    return (_REL_DIR / f"{name}.rel").read_text()
