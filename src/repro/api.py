"""The Session API: the canonical way to use the system.

The paper presents Rel as one coherent stack — the language, a GNF
database with transactional semantics, and libraries layered on top.  A
:class:`Session` is the corresponding programmatic object: it owns one
:class:`~repro.db.Database`, one rule catalog, and one long-lived
evaluation state, and it is the unit that can be pooled, snapshotted, and
served from.

Separation of *definition* from *execution* is the core design:

- :meth:`Session.query` returns a :class:`PreparedQuery` — parsed and
  compiled once, executable many times, parameterizable by swapping bound
  base relations;
- :meth:`Session.define` / :meth:`insert` / :meth:`delete` update base
  data with **stratum-level invalidation**: only the SCC strata that
  (transitively) depend on the touched relation are recomputed on the
  next execution, everything else keeps its extents and instance memos;
- :meth:`Session.transact` routes through the control-relation
  transaction semantics of Section 3.4 (``output`` / ``insert`` /
  ``delete``, constraint-checked, atomic), with the session's rules and
  integrity constraints in scope.

Quickstart::

    import repro

    session = repro.connect()
    session.define("Edge", [(1, 2), (2, 3)])
    session.load('''
        def Path(x, y) : Edge(x, y)
        def Path(x, y) : exists((z) | Edge(x, z) and Path(z, y))
    ''')
    reachable = session.query("Path[1]")     # a PreparedQuery
    print(reachable.run())                   # {(2,), (3,)}
    session.insert("Edge", [(3, 4)])         # dirties only Path's stratum
    print(reachable.run())                   # {(2,), (3,), (4,)}
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Tuple,
                    Union)

from repro.db.database import Database
from repro.db.transaction import Transaction, TransactionResult
from repro.engine import budget as _budget
from repro.engine.budget import EvalBudget
from repro.engine.program import EngineOptions, RelProgram
from repro.lang import ast, parse_expression, parse_program
from repro.model import columns as _columns
from repro.model.relation import EMPTY, Relation

RelationLike = Union[Relation, Iterable[Tuple[Any, ...]]]

#: Scalar parameter types accepted by snapshot query bindings.
_SCALARS = (bool, int, float, str)

_JOIN_STRATEGIES = ("auto", "leapfrog", "binary", "off")
_MAINTENANCE_MODES = ("auto", "delta", "recompute")
_COLUMNAR_MODES = ("auto", "on", "off")
_PARALLEL_MODES = ("auto", "on", "off")


def _check_join_strategy(value: str) -> str:
    if value not in _JOIN_STRATEGIES:
        raise ValueError(
            f"unknown join strategy {value!r}; expected one of "
            + ", ".join(repr(s) for s in _JOIN_STRATEGIES)
        )
    return value


def _check_maintenance(value: str) -> str:
    if value not in _MAINTENANCE_MODES:
        raise ValueError(
            f"unknown maintenance mode {value!r}; expected one of "
            + ", ".join(repr(s) for s in _MAINTENANCE_MODES)
        )
    return value


def _check_columnar(value: str) -> str:
    if value not in _COLUMNAR_MODES:
        raise ValueError(
            f"unknown columnar mode {value!r}; expected one of "
            + ", ".join(repr(s) for s in _COLUMNAR_MODES)
        )
    return value


def _check_parallel(value: str) -> str:
    if value not in _PARALLEL_MODES:
        raise ValueError(
            f"unknown parallel mode {value!r}; expected one of "
            + ", ".join(repr(s) for s in _PARALLEL_MODES)
        )
    return value


def _check_workers(value: int) -> int:
    if type(value) is not int or value < 0:
        raise ValueError(
            f"workers must be a non-negative integer, got {value!r}")
    return value


def _relation_statistics(name: str, rel: Relation) -> Dict[str, int]:
    """Per-relation size statistics: row count, approximate resident
    bytes, and how many columns the typed columnar plane covers (0 when
    the relation falls back to dict-of-tuples storage)."""
    cols = rel.columns()
    return {
        "rows": len(rel),
        "approx_bytes": rel.approx_bytes(),
        "columnar_columns": cols.arity if cols is not None else 0,
    }


def _resolve_budget(budget: Optional[EvalBudget],
                    deadline: Optional[float]) -> Optional[EvalBudget]:
    """One budget per call: an explicit :class:`EvalBudget` wins, a bare
    ``deadline`` is shorthand for ``EvalBudget(deadline=...)``."""
    if budget is not None:
        if deadline is not None:
            raise ValueError("pass either budget= or deadline=, not both")
        return budget
    if deadline is not None:
        return EvalBudget(deadline=deadline)
    return None


def _as_relation(value: RelationLike) -> Relation:
    if isinstance(value, Relation):
        return value
    try:
        return Relation(value)
    except TypeError as exc:
        raise TypeError(
            f"expected a Relation or an iterable of tuples, got {value!r}"
        ) from exc


class PreparedQuery:
    """A parsed, compiled Rel expression bound to a session.

    Parsing happens once, at preparation time; every :meth:`run` evaluates
    the stored AST against the session's current state.  Keyword arguments
    to :meth:`run` (re)bind base relations before execution, so one
    prepared query serves a family of inputs::

        tc = session.query("TC[E]")
        tc.run(E=[(1, 2), (2, 3)])
        tc.run(E=[(5, 6)])          # same compiled query, new data
    """

    __slots__ = ("session", "source", "_node")

    def __init__(self, session: "Session", source: str) -> None:
        self.session = session
        self.source = source
        self._node: ast.Node = parse_expression(source)

    def run(self, **relations: RelationLike) -> Relation:
        """Execute against the session, optionally swapping base relations.

        Bindings persist in the session (they are ordinary base-relation
        updates, applied as one batch: one maintenance pass, one snapshot
        publish, the same stratum-level invalidation)."""
        session = self.session
        with session._lock:
            if relations:
                session.apply_batch(relations)
            return session.program.query_node(self._node)

    __call__ = run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.source!r})"


def _as_binding(name: str, value: Any) -> Any:
    """Convert one snapshot-query parameter: Relations pass through,
    scalars bind as values, anything iterable becomes a Relation."""
    if isinstance(value, Relation) or isinstance(value, _SCALARS):
        return value
    try:
        return Relation(value)
    except TypeError as exc:
        raise TypeError(
            f"parameter {name!r} must be a Relation, a scalar, or an "
            f"iterable of tuples, got {value!r}"
        ) from exc


class SnapshotQuery:
    """A parsed query bound to one :class:`Snapshot` — parse once, run
    many times, each run against the same frozen state.

    Unlike :meth:`PreparedQuery.run`, keyword parameters do **not**
    persist anywhere: they are environment bindings for that run only, so
    concurrent runs with different parameters never interfere. Parameters
    bind names the query expression references directly — the idiomatic
    parameterization is second-order application (``TC[P]``,
    ``count[P]``), exactly the paper's style."""

    __slots__ = ("snapshot", "source", "_node")

    def __init__(self, snapshot: "Snapshot", source: str) -> None:
        self.snapshot = snapshot
        self.source = source
        self._node: ast.Node = parse_expression(source)

    def run(self, **params: Any) -> Relation:
        return self.snapshot.execute_node(self._node, params)

    __call__ = run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotQuery({self.source!r})"


class Snapshot:
    """A read-only, snapshot-isolated view of a :class:`Session`.

    Obtained from :meth:`Session.snapshot`. The snapshot captures the
    session's base relations, rules, and per-name generation vector at one
    instant (cheap: relations are immutable values and the engine's state
    containers are copy-on-write) and keeps serving exactly that state no
    matter what writers do afterwards — readers never block on writers and
    never observe a half-applied transaction. The warm plan, trie, and
    hash-index caches of the parent session are shared read-only, so a
    snapshot query is as fast as a warm session query.

    Any number of threads may query one snapshot concurrently; all
    mutators are absent from this surface (and raise on the underlying
    program). Statistics reported here are snapshot-local: reading them
    never creates or bumps counters in the parent session.
    """

    __slots__ = ("program", "version")

    def __init__(self, program: RelProgram, version: int) -> None:
        self.program = program  # a repro.engine.snapshot.ProgramSnapshot
        self.version = version  #: the session write-version captured

    # -- execution ---------------------------------------------------------

    def execute(self, source: str, **params: Any) -> Relation:
        """Evaluate a Rel expression against the frozen state. Keyword
        parameters are per-call environment bindings (see
        :class:`SnapshotQuery`)."""
        return self.execute_node(parse_expression(source), params)

    def execute_node(self, node: ast.Node,
                     params: Optional[Mapping[str, Any]] = None,
                     budget: Optional[EvalBudget] = None) -> Relation:
        """Evaluate an already-parsed expression (the server fast path).

        ``budget`` installs an :class:`EvalBudget` for this evaluation
        only; budgets are thread-local, so concurrent readers of the same
        snapshot each carry their own deadline."""
        bindings = {name: _as_binding(name, value)
                    for name, value in (params or {}).items()}
        if budget is None:
            return self.program.query_node(node, bindings or None)
        with _budget.scoped(budget):
            return self.program.query_node(node, bindings or None)

    def query(self, source: str) -> SnapshotQuery:
        """Prepare a query against this snapshot (parse once, run many)."""
        return SnapshotQuery(self, source)

    def relation(self, name: str) -> Relation:
        """The full extent of a defined or base relation, as of capture."""
        return self.program.relation(name)

    def ask(self, source: str) -> bool:
        return bool(self.execute(source))

    def output(self) -> Relation:
        return self.program.output()

    # -- introspection -----------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.program.closures)
                            | set(self.program.base_relations)))

    @property
    def generations(self) -> Dict[str, int]:
        """The captured per-name generation vector: the identity of this
        snapshot's state. Two snapshots with equal vectors observe
        identical extents for every name."""
        return dict(self.program._state.name_gen)

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-base-relation size statistics as of capture (same shape as
        :meth:`Session.statistics`, including the ``"interner"`` key —
        the interning table is process-wide and append-only, so the live
        reading is the honest one even for a frozen view)."""
        stats = {name: _relation_statistics(name, rel)
                 for name, rel in self.program.base_relations.items()}
        stats["interner"] = _columns.interner_statistics()
        return stats

    def evaluation_counts(self) -> Dict[str, int]:
        """Snapshot-local rule-evaluation counters (start at zero)."""
        return self.program.evaluation_counts()

    def join_statistics(self) -> Dict[str, int]:
        return self.program.join_statistics()

    def plan_statistics(self) -> Dict[str, int]:
        return self.program.plan_statistics()

    def maintenance_statistics(self) -> Dict[str, int]:
        return self.program.maintenance_statistics()

    def columnar_statistics(self) -> Dict[str, int]:
        return self.program.columnar_statistics()

    def parallel_statistics(self) -> Dict[str, int]:
        return self.program.parallel_statistics()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(version={self.version}, "
                f"{len(self.program.base_relations)} base relations)")


class Session:
    """One database + one rule catalog + one long-lived evaluation state.

    >>> session = Session()
    >>> session.define("E", [(1, 2), (2, 3)])
    >>> sorted(session.execute("TC[E]").tuples)
    [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(self, database: Optional[Union[Database, Mapping[str, Relation]]] = None,
                 schema: Optional[str] = None, *,
                 source: Optional[str] = None,
                 load_stdlib: bool = True,
                 enforce_gnf: bool = False,
                 options: Optional[EngineOptions] = None,
                 join_strategy: Optional[str] = None,
                 maintenance: Optional[str] = None,
                 columnar: Optional[str] = None,
                 parallel: Optional[str] = None,
                 workers: Optional[int] = None,
                 threads: Optional[int] = None,
                 queue_limit: Optional[int] = None,
                 admission: str = "block",
                 admission_timeout: float = 1.0,
                 path: Optional[Union[str, Path]] = None,
                 fsync: str = "batch",
                 checkpoint_every: Optional[int] = 256) -> None:
        # Concurrency model: one re-entrant lock serializes every state
        # mutation (and direct session reads, which share the live
        # evaluation state); concurrent readers go through snapshot(),
        # which is lock-free once a snapshot has been published. The lock
        # is created first so __init__'s own load() calls go through it.
        self._lock = threading.RLock()
        self._version = 0
        self._published: Optional[Snapshot] = None
        self._eager_publish = False
        self._server = None
        self._server_threads = int(threads) if threads else 0
        # Admission-control knobs for the attached QueryServer (validated
        # there, at serve() time): bounded write queue + backpressure.
        self._server_queue_limit = queue_limit
        self._server_admission = admission
        self._server_admission_timeout = admission_timeout
        self._close_started = False
        # Source texts in load order: with storage attached this is the
        # checkpointable half of the logical state (the other half is the
        # base extents) and the dedup key that makes
        # connect(path=..., schema=...) idempotent across reopens.
        self._sources: List[str] = []
        self._storage = None
        recovered = None
        if path is not None:
            from repro.storage import StorageManager

            # Recovery happens here: latest valid checkpoint + WAL-tail
            # replay, torn final record repaired. Raises WALCorruptionError
            # on mid-log damage rather than open a state that silently
            # lost committed writes.
            self._storage = StorageManager(path, fsync=fsync,
                                           checkpoint_every=checkpoint_every)
            recovered = self._storage.recovered
        if isinstance(database, Database):
            self.database = database
        else:
            self.database = Database(database or {}, enforce_gnf=enforce_gnf)
        if recovered is not None:
            # Install the recovered base *before* the program exists: a
            # bulk install at construction time costs nothing, while
            # define() per name on a live program would pay one dependency
            # invalidation each.
            for name, rel in recovered.base.items():
                self.database.install(name, rel)
        self._load_stdlib = load_stdlib
        # The session owns a private copy of its options: a caller-supplied
        # object may be shared with other sessions/programs and must not be
        # affected by this session's knobs (join_strategy here or via the
        # property setter, which mutates in place).
        options = dataclasses.replace(options) if options is not None \
            else EngineOptions()
        if join_strategy is not None:
            options.join_strategy = _check_join_strategy(join_strategy)
        if maintenance is not None:
            options.maintenance = _check_maintenance(maintenance)
        if columnar is not None:
            options.columnar = _check_columnar(columnar)
        if parallel is not None:
            options.parallel = _check_parallel(parallel)
        if workers is not None:
            options.workers = _check_workers(workers)
        self.program = RelProgram(
            database=self.database.as_mapping(),
            load_stdlib=load_stdlib,
            options=options,
        )
        if recovered is not None:
            # Replay recovered sources directly: they are already durable
            # (in the checkpoint or the WAL), so no logging and no version
            # bumps — a reopened session starts at version 0 like a fresh
            # one, with its committed state as the baseline.
            for src in recovered.sources:
                self.program.add_source(src)
                self._sources.append(src)
        if schema:
            self.load(schema)
        if source:
            self.load(source)

    # -- definition --------------------------------------------------------

    def load(self, source: str) -> "Session":
        """Add Rel declarations (``def`` rules and ``ic`` constraints).

        Only the strata depending on the (re)defined names are dirtied.
        On a durable session, a source text already loaded (this session
        or a recovered one) is skipped — that is what lets callers pass
        the same ``schema=`` to every ``connect(path=...)`` without
        duplicating rules on each reopen."""
        with self._lock:
            self._check_storage()
            if self._storage is not None and source in self._sources:
                return self
            # Parse before logging (syntax errors must leave no WAL
            # record), log before ingesting (a failed append must leave
            # the in-memory catalog in step with the durable log).
            parsed = parse_program(source)
            if self._storage is not None:
                self._storage.log_load(source)
            with _budget.scoped(None):
                self.program._ingest(parsed)
            self._sources.append(source)
            self._mutated()
            self._maybe_checkpoint()
        return self

    def define(self, name: str, relation: RelationLike) -> "Session":
        """Install or replace a base relation (GNF-checked if enforced)."""
        rel = _as_relation(relation)
        with self._lock:
            self._check_storage()
            old = self.database[name] if name in self.database else None
            # A value-unchanged define is a no-op like insert/delete: no
            # version bump, no snapshot republish, no WAL record.
            changed = old is None or not (old is rel or old == rel)
            if changed:
                # Log before applying: a failed WAL append must leave the
                # in-memory state in step with the durable log (the GNF
                # gate runs first so a rejected value logs nothing).
                self._precheck_gnf(name, rel)
                self._log_changed({name: (old, rel)})
            self.database.install(name, rel)
            with _budget.scoped(None):
                self.program.define(name, rel)
            if changed:
                self._mutated()
                self._maybe_checkpoint()
        return self

    def insert(self, name: str, tuples: RelationLike) -> "Session":
        """Insert tuples into a base relation (created on the spot).

        Dependent materialized extents are maintained incrementally (delta
        propagation through the stratified fixpoint) when the session's
        maintenance mode and the occurrence analysis allow it. An empty or
        fully-duplicate delta is a true no-op: nothing is re-evaluated."""
        delta = _as_relation(tuples)
        with self._lock:
            self._check_storage()
            if name not in self.database:
                self._precheck_gnf(name, delta)
                self._log_changed({name: (None, delta)})
                self.database.install(name, delta)
                with _budget.scoped(None):
                    self.program.define(name, delta)
                self._mutated()
                self._maybe_checkpoint()
                return self
            old = self.database[name]
            new = old.union(delta)
            if new is old:
                return self
            self._precheck_gnf(name, new)
            self._log_changed({name: (old, new)})
            self.database.install(name, new)
            with _budget.scoped(None):
                self.program.define(name, new)
            self._mutated()
            self._maybe_checkpoint()
        return self

    def delete(self, name: str, tuples: RelationLike) -> "Session":
        """Delete tuples from a base relation (DRed delete-rederive on
        dependent materialized extents where eligible). Deleting from a
        missing relation, or a delta that hits nothing, is a true no-op."""
        delta = _as_relation(tuples)
        with self._lock:
            self._check_storage()
            if name not in self.database:
                return self
            old = self.database[name]
            new = old.difference(delta)
            if new is old:
                return self
            self._log_changed({name: (old, new)})
            self.database.install(name, new)
            with _budget.scoped(None):
                self.program.define(name, new)
            self._mutated()
            self._maybe_checkpoint()
        return self

    def apply_batch(
        self, updates: Mapping[str, RelationLike],
    ) -> Dict[str, Tuple[Optional[Relation], Relation]]:
        """Replace several base relations in one atomic batch.

        ``updates`` maps names to their complete new contents. The batch
        is applied under the write lock through one incremental-maintenance
        pass (the PR-3 delta path) and published as one snapshot step —
        readers observe either none or all of it. Returns the applied
        ``name → (old, new)`` deltas (value-unchanged names are skipped).
        This is the coalescing entry point of the query server's write
        queue."""
        # Convert and GNF-validate everything before touching any state: a
        # bad value must fail the whole batch, not leave a prefix
        # installed (install() itself is the GNF gate, so pre-check here).
        converted = {name: _as_relation(value)
                     for name, value in updates.items()}
        if self.database.enforce_gnf:
            from repro.db.gnf import check_gnf

            for name, new in converted.items():
                check_gnf(name, new)
        with self._lock:
            self._check_storage()
            changed: Dict[str, Tuple[Optional[Relation], Relation]] = {}
            for name, new in converted.items():
                old = self.database[name] if name in self.database else None
                if old is not None and (old is new or old == new):
                    continue
                changed[name] = (old, new)
            if changed:
                # One WAL record per committed batch, appended *before*
                # anything is installed: a server write burst that
                # coalesced into this call is one log append, exactly
                # mirroring the one maintenance pass and one publish, and
                # a failed append leaves the in-memory state untouched.
                self._log_changed(changed)
                for name, (_, new) in changed.items():
                    self.database.install(name, new)
                with _budget.scoped(None):
                    self.program.apply_updates(changed)
                self._mutated()
                self._maybe_checkpoint()
            return changed

    # -- execution ---------------------------------------------------------

    def query(self, source: str) -> PreparedQuery:
        """Prepare a query: parse/compile once, execute many."""
        return PreparedQuery(self, source)

    def execute(self, source: str, *,
                budget: Optional[EvalBudget] = None,
                deadline: Optional[float] = None) -> Relation:
        """One-shot: prepare and run.

        ``deadline`` (seconds) or an explicit ``budget=``
        :class:`EvalBudget` bounds the evaluation; exceeding it raises
        :class:`~repro.engine.errors.QueryTimeoutError` /
        :class:`~repro.engine.errors.QueryBudgetError` and is safe to
        retry — the abort discards partial fixpoint state rather than
        installing it."""
        resolved = _resolve_budget(budget, deadline)
        with self._lock:
            node = parse_expression(source)
            if resolved is None:
                return self.program.query_node(node)
            with _budget.scoped(resolved):
                return self.program.query_node(node)

    def relation(self, name: str) -> Relation:
        """The full extent of a defined or base relation."""
        with self._lock:
            return self.program.relation(name)

    def ask(self, source: str) -> bool:
        """Boolean query: is the result non-empty?"""
        return bool(self.execute(source))

    def output(self) -> Relation:
        """The ``output`` control relation of the session's rules."""
        with self._lock:
            return self.program.output()

    # -- snapshots and serving ---------------------------------------------

    @property
    def version(self) -> int:
        """Monotone write-version: bumped once per completed mutation."""
        return self._version

    def _mutated(self) -> None:
        """Record a completed write (caller holds the lock): bump the
        version and atomically publish a fresh snapshot (or invalidate the
        stale one when nobody has asked for snapshots yet).

        Publication is deliberately *eager* once snapshots are in use:
        the capture cost (shallow dict copies) is paid by the writer so
        that ``snapshot()`` stays a lock-free attribute read — rebuilding
        lazily would be cheaper for write-only bursts but would make the
        first reader after a write block behind any in-flight writer,
        breaking the readers-never-block-on-writers guarantee."""
        self._version += 1
        if self._eager_publish:
            self._published = Snapshot(self.program.snapshot(), self._version)
        else:
            self._published = None

    def snapshot(self) -> Snapshot:
        """The current :class:`Snapshot`: an immutable view of all writes
        completed so far.

        After the first call, every completed write republishes eagerly,
        so this read is a single lock-free attribute load — readers never
        block on writers (a writer that is mid-transaction is simply not
        yet visible). Successive calls between writes return the *same*
        snapshot object, so its warm extents and caches are shared."""
        snap = self._published
        if snap is None:
            with self._lock:
                if self._published is None:
                    self._eager_publish = True
                    self._published = Snapshot(self.program.snapshot(),
                                               self._version)
                snap = self._published
        return snap

    def serve(self, threads: Optional[int] = None,
              queue_limit: Optional[int] = None,
              admission: Optional[str] = None,
              admission_timeout: Optional[float] = None):
        """The session's :class:`~repro.server.QueryServer` (started on
        first use): a thread pool evaluating prepared queries against
        snapshots, plus a serialized, coalescing write queue.

        With no argument, returns whatever server is attached (creating
        one sized by ``connect(threads=N)``, else 4). With an explicit
        ``threads``, asking for a *different* count than the running
        server's raises (close() it first) rather than silently handing
        back a pool of the wrong size. A server that was closed directly
        (e.g. by its context manager) is discarded and replaced.

        ``queue_limit`` / ``admission`` / ``admission_timeout`` override
        the session-level knobs from :func:`connect` when a *new* server
        is created here (they are ignored when one is already attached):
        a bounded write queue whose full-queue policy is ``"block"``
        (backpressure the producer), ``"reject"`` (raise
        :class:`~repro.server.AdmissionError` immediately), or
        ``"timeout"`` (block up to ``admission_timeout`` seconds, then
        raise)."""
        from repro.server import QueryServer

        with self._lock:
            if self._server is not None and self._server.closed:
                self._server = None
            if self._server is None:
                self._server = QueryServer(
                    self,
                    threads=(threads if threads is not None
                             else self._server_threads or 4),
                    queue_limit=(queue_limit if queue_limit is not None
                                 else self._server_queue_limit),
                    admission=(admission if admission is not None
                               else self._server_admission),
                    admission_timeout=(
                        admission_timeout if admission_timeout is not None
                        else self._server_admission_timeout))
            elif threads is not None and self._server.threads != threads:
                raise ValueError(
                    f"session already serves with "
                    f"{self._server.threads} threads; close() it before "
                    f"requesting {threads}"
                )
            return self._server

    @property
    def server(self):
        """The attached :class:`~repro.server.QueryServer` (created on
        first access): shorthand for :meth:`serve` with no argument."""
        return self.serve()

    def close(self) -> None:
        """Shut down the attached query server (draining its write queue —
        pending batches still reach the WAL), then seal durable storage.
        After close, reads keep working; mutations on a durable session
        raise :class:`~repro.storage.StorageClosedError`.

        Idempotent and safe under concurrent callers: exactly one caller
        detaches the server (the others see it already gone), the server
        and storage close protocols are themselves reentrant, and a
        deferred background-checkpoint error is raised by whichever
        caller reaches storage first — once, after resources are
        released."""
        with self._lock:
            self._close_started = True
            server, self._server = self._server, None
        # Outside the session lock: draining the write queue re-enters
        # apply_batch, which needs the lock (close-during-flush must not
        # deadlock).
        if server is not None:
            server.close()
        storage = self._storage
        if storage is not None:
            storage.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun. Reads keep working on a
        closed session; durable mutations raise
        :class:`~repro.storage.StorageClosedError`."""
        return self._close_started

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- durable storage ---------------------------------------------------

    def _check_storage(self) -> None:
        """Refuse mutations once durable storage is sealed — called before
        any state is touched, so a closed session never diverges from its
        log."""
        if self._storage is not None and self._storage.closed:
            from repro.storage import StorageClosedError

            raise StorageClosedError(
                "session storage is closed; reopen with connect(path=...)"
            )

    def _precheck_gnf(self, name: str, rel: Relation) -> None:
        """GNF-validate ahead of the WAL append on durable sessions: a
        rejected value must leave no record for recovery to replay.
        (install() re-validates — the double check only costs on the rare
        durable + enforce_gnf combination.)"""
        if self._storage is not None and self.database.enforce_gnf:
            from repro.db.gnf import check_gnf

            check_gnf(name, rel)

    def _log_changed(
        self, changed: Mapping[str, Tuple[Optional[Relation], Relation]],
    ) -> None:
        """Append one WAL batch record for applied ``name → (old, new)``
        deltas (caller holds the lock; called after the GNF gate and
        before the snapshot publish)."""
        if self._storage is None or not changed:
            return
        updates = {}
        for name, (old, new) in changed.items():
            prev = old if old is not None else EMPTY
            updates[name] = (new.difference(prev), prev.difference(new))
        self._storage.log_batch(updates)

    def _maybe_checkpoint(self) -> None:
        """Kick off a background checkpoint when the WAL has grown past
        the ``checkpoint_every`` record threshold (caller holds the lock;
        at most one checkpoint is in flight)."""
        if self._storage is not None and self._storage.checkpoint_due:
            self._storage.begin_checkpoint(self._sources,
                                           self.program.durable_state())

    def checkpoint(self) -> "Session":
        """Write a snapshot checkpoint *now* and wait for it.

        Afterwards the WAL tail is empty: reopening replays zero records
        (the fast path :mod:`benchmarks.bench_storage` measures). No-op
        guard: raises on a session without storage."""
        with self._lock:
            if self._storage is None:
                raise ValueError(
                    "checkpoint() requires a durable session — open one "
                    "with connect(path=...)"
                )
            self._check_storage()
            self._storage.begin_checkpoint(self._sources,
                                           self.program.durable_state(),
                                           wait=True)
        return self

    def sync(self) -> "Session":
        """Durability barrier: every committed write is fsync'd (under the
        ``"always"``/``"batch"`` policies) when this returns. A no-op on
        non-durable sessions, so callers can sprinkle it unconditionally."""
        with self._lock:
            if self._storage is not None and not self._storage.closed:
                self._storage.sync()
        return self

    def bulk_load(self, name: str, rows: Iterable, *,
                  table_format: str = "log") -> int:
        """Stream many rows into a base relation as *one* committed batch.

        This is the high-throughput ingest path: however many rows arrive,
        the cost is one relation union, one incremental-maintenance pass,
        one snapshot publish, and (durable sessions) one WAL record —
        versus one of each *per call* on the :meth:`insert` path.

        ``table_format`` chooses where a durable session puts the rows:
        ``"log"`` inlines them into the WAL record; ``"sqlite"`` stores
        them as an immutable batch in ``tables.sqlite`` and logs only the
        batch id (better for very large loads — recovery scans stay small).
        Returns the number of rows that were actually new."""
        if table_format not in ("log", "sqlite"):
            raise ValueError(
                f"unknown table_format {table_format!r}; "
                "expected 'log' or 'sqlite'"
            )
        from repro.storage.bulkload import coerce_rows

        coerced = coerce_rows(rows)
        with self._lock:
            self._check_storage()
            if table_format == "sqlite" and self._storage is None:
                raise ValueError(
                    "table_format='sqlite' requires a durable session — "
                    "open one with connect(path=...)"
                )
            old = self.database[name] if name in self.database else None
            base = old if old is not None else EMPTY
            new = base.union(Relation(coerced))
            if new is base or len(new) == len(base):
                return 0
            if self.database.enforce_gnf:
                # The GNF gate must precede the log append: a rejected
                # load must leave no record for recovery to replay.
                from repro.db.gnf import check_gnf

                check_gnf(name, new)
            if self._storage is not None:
                self._storage.log_bulk(
                    name, coerced, use_store=(table_format == "sqlite"))
            self.database.install(name, new)
            with _budget.scoped(None):
                self.program.apply_updates({name: (old, new)})
            self._mutated()
            self._maybe_checkpoint()
            return len(new) - len(base)

    def storage_statistics(self) -> Dict[str, int]:
        """Durability counters (``wal_appends``, ``wal_bytes``,
        ``checkpoints``, ``recoveries``, ``replayed_records``,
        ``bulk_rows``); ``{}`` on a session without storage. Reading this
        never creates state."""
        if self._storage is None:
            return {}
        return self._storage.statistics()

    # -- transactions ------------------------------------------------------

    def transact(self, source: str) -> TransactionResult:
        """Run a transaction (Section 3.4) with the session's rules and
        constraints in scope.

        Control relations drive it: ``output`` is returned, ``insert`` /
        ``delete`` requests are applied atomically unless an integrity
        constraint is violated, in which case nothing changes — including
        the session's computed extents."""
        with self._lock:
            self._check_storage()
            txn = Transaction(
                self.database,
                options=self.program.options,
                load_stdlib=self._load_stdlib,
                extra_rules=self.program,
            )
            result = txn.execute(source)
            if result.committed and result.changed:
                # One batched maintenance pass over the committed deltas:
                # the same incremental path as Session.insert/delete. The
                # snapshot republish happens only here, after the batch —
                # concurrent readers see the pre- or post-transaction
                # state, never a half-applied one. Aborted transactions
                # (constraint violations) log nothing.
                with _budget.scoped(None):
                    self.program.apply_updates(result.changed)
                self._log_changed(result.changed)
                self._mutated()
                self._maybe_checkpoint()
            return result

    # -- introspection -----------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """All defined names: base relations and rule-defined relations."""
        return tuple(sorted(set(self.program.closures)
                            | set(self.database.names())))

    def evaluation_counts(self) -> Dict[str, int]:
        """Per-relation rule-evaluation counters (incremental-reuse hook):
        an unchanged stratum keeps its count across updates and queries."""
        return self.program.evaluation_counts()

    @property
    def join_strategy(self) -> str:
        """The session's conjunction join routing: "auto" (heuristic pick
        between leapfrog and a binary plan), "leapfrog", "binary", or
        "off" (per-conjunct fallback scheduler only)."""
        return self.program.options.join_strategy

    @join_strategy.setter
    def join_strategy(self, value: str) -> None:
        # In-place on the program's options — the live evaluation context
        # holds the same object, so the switch takes effect immediately;
        # the constructor copied them, so no other session is affected
        # (snapshots copied them too: an already-published snapshot keeps
        # its routing, the republished one picks the new value up).
        value = _check_join_strategy(value)
        with self._lock:
            self.program.options.join_strategy = value
            self._mutated()

    def join_statistics(self) -> Dict[str, int]:
        """How many conjunctions were evaluated by the multiway-join path,
        per strategy ("leapfrog" / "binary") — the explain counter for
        checking that a query hit the worst-case-optimal path."""
        return self.program.join_statistics()

    @property
    def maintenance(self) -> str:
        """How updates reach materialized derived extents: "auto" (delta
        propagation with a size heuristic), "delta" (always propagate
        deltas, per-stratum recompute only where the occurrence analysis
        requires it), or "recompute" (legacy drop-and-recompute)."""
        return self.program.options.maintenance

    @maintenance.setter
    def maintenance(self, value: str) -> None:
        value = _check_maintenance(value)
        with self._lock:
            self.program.options.maintenance = value

    def plan_statistics(self) -> Dict[str, int]:
        """Plan-cache explain counters ("compiled", "hits", "fallbacks",
        "invalidated"): rule bodies and query conjunctions are compiled
        once into executable plans and replayed across fixpoint
        iterations, incremental maintenance, and prepared-query re-runs —
        a warm session shows "hits" far above "compiled". Rule changes
        drop exactly the dependent plans (stratum-level invalidation);
        data updates leave plans warm."""
        return self.program.plan_statistics()

    @property
    def columnar(self) -> str:
        """The session's columnar data plane knob: "auto" (vectorized
        kernels when every participating column is typed and the input is
        large enough to amortize), "on" (kernels whenever the columns are
        typeable, any size), or "off" (row-at-a-time interpretation
        only). Results are identical in all three modes."""
        return self.program.options.columnar

    @columnar.setter
    def columnar(self, value: str) -> None:
        # In-place on the program's options, like join_strategy: kernels
        # consult the knob at evaluation time, so the switch takes effect
        # immediately; results never change, only the execution path.
        value = _check_columnar(value)
        with self._lock:
            self.program.options.columnar = value

    def columnar_statistics(self) -> Dict[str, int]:
        """Columnar-kernel explain counters: per-kernel hit counts
        ("join", "dedupe", "project", "union", "filter", "fold") and the
        matching "*_fallback" counts for inputs the typed plane declined —
        the observability hook for checking that a workload actually runs
        vectorized."""
        return self.program.columnar_statistics()

    @property
    def parallel(self) -> str:
        """The sharded-parallel-evaluation knob: "auto" (SN-eligible
        recursive strata whose round-0 totals reach ``parallel_min_rows``
        run across the worker pool), "on" (force the attempt regardless
        of size), or "off" (never leave the process). Does nothing until
        :attr:`workers` is at least 2. Results are identical in all
        modes — ineligible or unshippable strata always fall back
        in-process (see :meth:`parallel_statistics`)."""
        return self.program.options.parallel

    @parallel.setter
    def parallel(self, value: str) -> None:
        value = _check_parallel(value)
        with self._lock:
            self.program.options.parallel = value

    @property
    def workers(self) -> int:
        """Size of the shard worker pool used by parallel fixpoint
        evaluation; 0 or 1 keeps everything in-process. The pool itself
        is process-global and shared across sessions (spawned lazily on
        the first parallel fixpoint)."""
        return self.program.options.workers

    @workers.setter
    def workers(self, value: int) -> None:
        value = _check_workers(value)
        with self._lock:
            self.program.options.workers = value

    def parallel_statistics(self) -> Dict[str, int]:
        """Parallel-fixpoint explain counters: "parallel_fixpoints",
        "shards", "rounds", "exchanged_rows", "shipped_bytes",
        "fallbacks", and "below_min_rows" — the observability hook for
        checking whether a recursive workload actually ran sharded, and
        why it fell back in-process when it did not."""
        return self.program.parallel_statistics()

    def maintenance_statistics(self) -> Dict[str, int]:
        """Per-event maintenance counters ("maintained_strata",
        "recomputed_strata", "overdeleted_tuples", "rederived_tuples",
        "noop_updates", …) — the explain hook for checking that an update
        took the incremental path, mirroring :meth:`join_statistics`."""
        return self.program.maintenance_statistics()

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-base-relation size statistics: ``rows`` (fact count),
        ``approx_bytes`` (resident size estimate — exact vector bytes for
        typed relations, a per-tuple heuristic for dict fallback), and
        ``columnar_columns`` (how many columns the typed plane covers; 0
        means the relation is on the dict-of-tuples path). One extra key,
        ``"interner"``, reports the process-wide string interning table
        (``strings`` registered, ``approx_bytes`` retained) — process-wide
        because the table is shared by every session, checkpoint codec
        block, and snapshot in the process; its growth is the cost of
        string-typed columns staying vectorized."""
        with self._lock:
            stats: Dict[str, Dict[str, int]] = {
                name: _relation_statistics(name, rel)
                for name, rel in self.database.items()}
        stats["interner"] = _columns.interner_statistics()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({len(self.database)} base relations, "
                f"{len(self.program.closures)} defined names)")


def connect(database: Optional[Union[Database, Mapping[str, Relation]]] = None,
            schema: Optional[str] = None, **kwargs: Any) -> Session:
    """Open a :class:`Session` — the front door of the system.

    ``database`` is an existing :class:`~repro.db.Database`, or a mapping
    of name → :class:`~repro.model.Relation` to start from (copied on
    ingest — later mutation of the caller's mapping never leaks into the
    session); ``schema`` is Rel source (rules and integrity constraints)
    loaded at connect time. ``threads=N`` sizes the session's
    :attr:`Session.server` thread pool for concurrent serving (see
    :mod:`repro.server`); ``workers=N`` (with ``parallel="auto"|"on"``)
    enables sharded parallel fixpoint evaluation across N spawned
    processes for large recursive strata (see
    :mod:`repro.engine.parallel` and
    :meth:`Session.parallel_statistics`); ``queue_limit=N`` bounds its
    write queue and
    ``admission`` picks the backpressure policy when the queue is full
    (``"block"`` / ``"reject"`` / ``"timeout"`` with
    ``admission_timeout`` seconds). Per-query resource governance comes
    from :meth:`Session.execute`'s ``deadline=``/``budget=`` and
    :meth:`~repro.server.QueryServer.submit`'s matching knobs
    (:class:`repro.EvalBudget`).

    ``path=<dir>`` makes the session *durable*: every committed batch is
    appended to a write-ahead log under that directory, snapshot
    checkpoints fold the log into :mod:`repro.storage.checkpoint` files in
    the background, and reopening the same path crash-recovers the
    committed state (latest valid checkpoint + WAL-tail replay, torn final
    records tolerated). ``fsync`` tunes the durability/latency trade
    (``"always"`` / ``"batch"`` / ``"never"``, see
    :class:`repro.storage.wal.WALWriter`) and ``checkpoint_every=N``
    checkpoints after every N log records (``None`` = only explicit
    :meth:`Session.checkpoint` calls). On a durable session, ``schema=``
    is idempotent across reopens and :meth:`Session.bulk_load` offers the
    high-throughput ingest path. Remaining keyword arguments are forwarded
    to :class:`Session`."""
    return Session(database, schema, **kwargs)
