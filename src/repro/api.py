"""The Session API: the canonical way to use the system.

The paper presents Rel as one coherent stack — the language, a GNF
database with transactional semantics, and libraries layered on top.  A
:class:`Session` is the corresponding programmatic object: it owns one
:class:`~repro.db.Database`, one rule catalog, and one long-lived
evaluation state, and it is the unit that can be pooled, snapshotted, and
served from.

Separation of *definition* from *execution* is the core design:

- :meth:`Session.query` returns a :class:`PreparedQuery` — parsed and
  compiled once, executable many times, parameterizable by swapping bound
  base relations;
- :meth:`Session.define` / :meth:`insert` / :meth:`delete` update base
  data with **stratum-level invalidation**: only the SCC strata that
  (transitively) depend on the touched relation are recomputed on the
  next execution, everything else keeps its extents and instance memos;
- :meth:`Session.transact` routes through the control-relation
  transaction semantics of Section 3.4 (``output`` / ``insert`` /
  ``delete``, constraint-checked, atomic), with the session's rules and
  integrity constraints in scope.

Quickstart::

    import repro

    session = repro.connect()
    session.define("Edge", [(1, 2), (2, 3)])
    session.load('''
        def Path(x, y) : Edge(x, y)
        def Path(x, y) : exists((z) | Edge(x, z) and Path(z, y))
    ''')
    reachable = session.query("Path[1]")     # a PreparedQuery
    print(reachable.run())                   # {(2,), (3,)}
    session.insert("Edge", [(3, 4)])         # dirties only Path's stratum
    print(reachable.run())                   # {(2,), (3,), (4,)}
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.db.database import Database
from repro.db.transaction import Transaction, TransactionResult
from repro.engine.program import EngineOptions, RelProgram
from repro.lang import ast, parse_expression
from repro.model.relation import Relation

RelationLike = Union[Relation, Iterable[Tuple[Any, ...]]]

_JOIN_STRATEGIES = ("auto", "leapfrog", "binary", "off")
_MAINTENANCE_MODES = ("auto", "delta", "recompute")


def _check_join_strategy(value: str) -> str:
    if value not in _JOIN_STRATEGIES:
        raise ValueError(
            f"unknown join strategy {value!r}; expected one of "
            + ", ".join(repr(s) for s in _JOIN_STRATEGIES)
        )
    return value


def _check_maintenance(value: str) -> str:
    if value not in _MAINTENANCE_MODES:
        raise ValueError(
            f"unknown maintenance mode {value!r}; expected one of "
            + ", ".join(repr(s) for s in _MAINTENANCE_MODES)
        )
    return value


def _as_relation(value: RelationLike) -> Relation:
    if isinstance(value, Relation):
        return value
    try:
        return Relation(value)
    except TypeError as exc:
        raise TypeError(
            f"expected a Relation or an iterable of tuples, got {value!r}"
        ) from exc


class PreparedQuery:
    """A parsed, compiled Rel expression bound to a session.

    Parsing happens once, at preparation time; every :meth:`run` evaluates
    the stored AST against the session's current state.  Keyword arguments
    to :meth:`run` (re)bind base relations before execution, so one
    prepared query serves a family of inputs::

        tc = session.query("TC[E]")
        tc.run(E=[(1, 2), (2, 3)])
        tc.run(E=[(5, 6)])          # same compiled query, new data
    """

    __slots__ = ("session", "source", "_node")

    def __init__(self, session: "Session", source: str) -> None:
        self.session = session
        self.source = source
        self._node: ast.Node = parse_expression(source)

    def run(self, **relations: RelationLike) -> Relation:
        """Execute against the session, optionally swapping base relations.

        Bindings persist in the session (they are ordinary base-relation
        updates and enjoy the same stratum-level invalidation)."""
        for name, value in relations.items():
            self.session.define(name, value)
        return self.session.program.query_node(self._node)

    __call__ = run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.source!r})"


class Session:
    """One database + one rule catalog + one long-lived evaluation state.

    >>> session = Session()
    >>> session.define("E", [(1, 2), (2, 3)])
    >>> sorted(session.execute("TC[E]").tuples)
    [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(self, database: Optional[Union[Database, Mapping[str, Relation]]] = None,
                 schema: Optional[str] = None, *,
                 source: Optional[str] = None,
                 load_stdlib: bool = True,
                 enforce_gnf: bool = False,
                 options: Optional[EngineOptions] = None,
                 join_strategy: Optional[str] = None,
                 maintenance: Optional[str] = None) -> None:
        if isinstance(database, Database):
            self.database = database
        else:
            self.database = Database(database or {}, enforce_gnf=enforce_gnf)
        self._load_stdlib = load_stdlib
        # The session owns a private copy of its options: a caller-supplied
        # object may be shared with other sessions/programs and must not be
        # affected by this session's knobs (join_strategy here or via the
        # property setter, which mutates in place).
        options = dataclasses.replace(options) if options is not None \
            else EngineOptions()
        if join_strategy is not None:
            options.join_strategy = _check_join_strategy(join_strategy)
        if maintenance is not None:
            options.maintenance = _check_maintenance(maintenance)
        self.program = RelProgram(
            database=self.database.as_mapping(),
            load_stdlib=load_stdlib,
            options=options,
        )
        if schema:
            self.load(schema)
        if source:
            self.load(source)

    # -- definition --------------------------------------------------------

    def load(self, source: str) -> "Session":
        """Add Rel declarations (``def`` rules and ``ic`` constraints).

        Only the strata depending on the (re)defined names are dirtied."""
        self.program.add_source(source)
        return self

    def define(self, name: str, relation: RelationLike) -> "Session":
        """Install or replace a base relation (GNF-checked if enforced)."""
        rel = _as_relation(relation)
        self.database.install(name, rel)
        self.program.define(name, rel)
        return self

    def insert(self, name: str, tuples: RelationLike) -> "Session":
        """Insert tuples into a base relation (created on the spot).

        Dependent materialized extents are maintained incrementally (delta
        propagation through the stratified fixpoint) when the session's
        maintenance mode and the occurrence analysis allow it. An empty or
        fully-duplicate delta is a true no-op: nothing is re-evaluated."""
        delta = _as_relation(tuples)
        if name not in self.database:
            self.database.install(name, delta)
            self.program.define(name, delta)
            return self
        old = self.database[name]
        new = old.union(delta)
        if new is old:
            return self
        self.database.install(name, new)
        self.program.define(name, new)
        return self

    def delete(self, name: str, tuples: RelationLike) -> "Session":
        """Delete tuples from a base relation (DRed delete-rederive on
        dependent materialized extents where eligible). Deleting from a
        missing relation, or a delta that hits nothing, is a true no-op."""
        delta = _as_relation(tuples)
        if name not in self.database:
            return self
        old = self.database[name]
        new = old.difference(delta)
        if new is old:
            return self
        self.database.install(name, new)
        self.program.define(name, new)
        return self

    # -- execution ---------------------------------------------------------

    def query(self, source: str) -> PreparedQuery:
        """Prepare a query: parse/compile once, execute many."""
        return PreparedQuery(self, source)

    def execute(self, source: str) -> Relation:
        """One-shot: prepare and run."""
        return self.program.query_node(parse_expression(source))

    def relation(self, name: str) -> Relation:
        """The full extent of a defined or base relation."""
        return self.program.relation(name)

    def ask(self, source: str) -> bool:
        """Boolean query: is the result non-empty?"""
        return bool(self.execute(source))

    def output(self) -> Relation:
        """The ``output`` control relation of the session's rules."""
        return self.program.output()

    # -- transactions ------------------------------------------------------

    def transact(self, source: str) -> TransactionResult:
        """Run a transaction (Section 3.4) with the session's rules and
        constraints in scope.

        Control relations drive it: ``output`` is returned, ``insert`` /
        ``delete`` requests are applied atomically unless an integrity
        constraint is violated, in which case nothing changes — including
        the session's computed extents."""
        txn = Transaction(
            self.database,
            options=self.program.options,
            load_stdlib=self._load_stdlib,
            extra_rules=self.program,
        )
        result = txn.execute(source)
        if result.committed and result.changed:
            # One batched maintenance pass over the committed deltas: the
            # same incremental path as Session.insert/delete.
            self.program.apply_updates(result.changed)
        return result

    # -- introspection -----------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """All defined names: base relations and rule-defined relations."""
        return tuple(sorted(set(self.program.closures)
                            | set(self.database.names())))

    def evaluation_counts(self) -> Dict[str, int]:
        """Per-relation rule-evaluation counters (incremental-reuse hook):
        an unchanged stratum keeps its count across updates and queries."""
        return self.program.evaluation_counts()

    @property
    def join_strategy(self) -> str:
        """The session's conjunction join routing: "auto" (heuristic pick
        between leapfrog and a binary plan), "leapfrog", "binary", or
        "off" (per-conjunct fallback scheduler only)."""
        return self.program.options.join_strategy

    @join_strategy.setter
    def join_strategy(self, value: str) -> None:
        # In-place on the program's options — the live evaluation context
        # holds the same object, so the switch takes effect immediately;
        # the constructor copied them, so no other session is affected.
        self.program.options.join_strategy = _check_join_strategy(value)

    def join_statistics(self) -> Dict[str, int]:
        """How many conjunctions were evaluated by the multiway-join path,
        per strategy ("leapfrog" / "binary") — the explain counter for
        checking that a query hit the worst-case-optimal path."""
        return self.program.join_statistics()

    @property
    def maintenance(self) -> str:
        """How updates reach materialized derived extents: "auto" (delta
        propagation with a size heuristic), "delta" (always propagate
        deltas, per-stratum recompute only where the occurrence analysis
        requires it), or "recompute" (legacy drop-and-recompute)."""
        return self.program.options.maintenance

    @maintenance.setter
    def maintenance(self, value: str) -> None:
        self.program.options.maintenance = _check_maintenance(value)

    def plan_statistics(self) -> Dict[str, int]:
        """Plan-cache explain counters ("compiled", "hits", "fallbacks",
        "invalidated"): rule bodies and query conjunctions are compiled
        once into executable plans and replayed across fixpoint
        iterations, incremental maintenance, and prepared-query re-runs —
        a warm session shows "hits" far above "compiled". Rule changes
        drop exactly the dependent plans (stratum-level invalidation);
        data updates leave plans warm."""
        return self.program.plan_statistics()

    def maintenance_statistics(self) -> Dict[str, int]:
        """Per-event maintenance counters ("maintained_strata",
        "recomputed_strata", "overdeleted_tuples", "rederived_tuples",
        "noop_updates", …) — the explain hook for checking that an update
        took the incremental path, mirroring :meth:`join_statistics`."""
        return self.program.maintenance_statistics()

    def statistics(self) -> Dict[str, int]:
        """Fact counts per stored base relation."""
        return {name: len(rel) for name, rel in self.database.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({len(self.database)} base relations, "
                f"{len(self.program.closures)} defined names)")


def connect(database: Optional[Union[Database, Mapping[str, Relation]]] = None,
            schema: Optional[str] = None, **kwargs: Any) -> Session:
    """Open a :class:`Session` — the front door of the system.

    ``database`` is an existing :class:`~repro.db.Database`, or a mapping
    of name → :class:`~repro.model.Relation` to start from; ``schema`` is
    Rel source (rules and integrity constraints) loaded at connect time.
    Remaining keyword arguments are forwarded to :class:`Session`."""
    return Session(database, schema, **kwargs)
