"""Leapfrog Triejoin — a worst-case optimal join algorithm [47].

Veldhuizen's algorithm joins any number of relations simultaneously,
variable by variable: for each variable in a global order, the *leapfrog
join* intersects the sorted key streams of every relation containing that
variable, seeking (galloping) past mismatches. Its running time is within a
log factor of the AGM bound, which is what makes triangle-style queries on
skewed data asymptotically faster than any binary-join plan — the property
the paper credits with making GNF's many-joins style viable (Section 7).

Relations are presented as sorted tries (:class:`repro.model.trie` builds
unsorted tries; here we keep per-level sorted key arrays for binary-search
seeks). Each relation's columns must be ordered consistently with the
global variable order (the caller reorders).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.values import sort_key

Row = Tuple[Any, ...]


class _TrieLevelNode:
    """A sorted-trie node: ordered keys plus child nodes."""

    __slots__ = ("keys", "children", "sort_keys")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.sort_keys: List[Any] = []
        self.children: List[Optional["_TrieLevelNode"]] = []


def build_sorted_trie(rows: Sequence[Row]) -> _TrieLevelNode:
    """Build a sorted trie over fixed-arity rows.

    Keys collapse under *value semantics* (:func:`sort_key`): ``1`` and
    ``1.0`` share a trie key, ``True`` and ``1`` do not — matching the
    engine's equality and the binary join algorithms.
    """
    root = _TrieLevelNode()
    if not rows:
        return root
    arity = len(rows[0])
    ordered = sorted(rows, key=lambda r: tuple(sort_key(v) for v in r))
    for row in ordered:
        node = root
        for depth, value in enumerate(row):
            sk = sort_key(value)
            if node.sort_keys and node.sort_keys[-1] == sk:
                child = node.children[-1]
            else:
                child = _TrieLevelNode() if depth + 1 < arity else None
                node.keys.append(value)
                node.sort_keys.append(sk)
                node.children.append(child)
            if child is not None:
                node = child
    return root


class _TrieIterator:
    """Trie iterator with the leapfrog interface: key/next/seek/open/up."""

    __slots__ = ("path", "positions")

    def __init__(self, root: _TrieLevelNode) -> None:
        self.path: List[_TrieLevelNode] = [root]
        self.positions: List[int] = []

    # -- linear iterator at the current depth ---------------------------------

    def _node(self) -> _TrieLevelNode:
        return self.path[-1]

    def at_end(self) -> bool:
        return self.positions[-1] >= len(self._node().keys)

    def key(self) -> Any:
        return self._node().keys[self.positions[-1]]

    def _key_sort(self) -> Any:
        return self._node().sort_keys[self.positions[-1]]

    def next(self) -> None:
        self.positions[-1] += 1

    def seek(self, target_sort_key: Any) -> None:
        """Advance to the first key ≥ target (galloping via bisect)."""
        node = self._node()
        pos = self.positions[-1]
        self.positions[-1] = bisect.bisect_left(node.sort_keys, target_sort_key,
                                                lo=pos)

    # -- trie navigation -------------------------------------------------------

    def open(self) -> None:
        """Descend into the children of the current key."""
        child = self._node().children[self.positions[-1]]
        self.path.append(child if child is not None else _TrieLevelNode())
        self.positions.append(0)

    def up(self) -> None:
        self.path.pop()
        self.positions.pop()

    def start(self) -> None:
        self.positions.append(0)


class LeapfrogTriejoin:
    """Worst-case optimal join of atoms over a global variable order.

    ``atoms`` is a list of ``(rows, variables)`` pairs; each atom's variable
    tuple must be a subsequence of ``variable_order`` (the caller projects /
    reorders columns accordingly). In place of ``rows`` an atom may carry a
    prebuilt sorted trie (from :func:`build_sorted_trie`) — the hook through
    which the engine reuses cached tries across evaluations.
    """

    def __init__(self, atoms: Sequence[Tuple[Any, Sequence[str]]],
                 variable_order: Sequence[str]) -> None:
        self.variable_order = list(variable_order)
        self.tries: List[_TrieIterator] = []
        self.atom_vars: List[List[str]] = []
        for rows, variables in atoms:
            variables = list(variables)
            positions = [self.variable_order.index(v) for v in variables]
            if positions != sorted(positions):
                raise ValueError(
                    f"atom variables {variables} are not aligned with the "
                    f"global order {self.variable_order}"
                )
            if isinstance(rows, _TrieLevelNode):
                trie = rows
            else:
                trie = build_sorted_trie(list(rows))
            self.tries.append(_TrieIterator(trie))
            self.atom_vars.append(variables)

    def run(self) -> Iterator[Row]:
        """Yield all result rows (one value per variable, in global order)."""
        yield from self._recurse(0, [])

    def _iters_for(self, depth: int) -> List[_TrieIterator]:
        variable = self.variable_order[depth]
        return [it for it, vs in zip(self.tries, self.atom_vars)
                if variable in vs]

    def _recurse(self, depth: int, prefix: List[Any]) -> Iterator[Row]:
        if depth == len(self.variable_order):
            yield tuple(prefix)
            return
        participants = self._iters_for(depth)
        for it in participants:
            # First participation of this atom: position a cursor at its
            # first trie level. (Deeper levels are opened by open().)
            if len(it.positions) < len(it.path):
                it.start()
        for value in self._leapfrog(participants):
            for it in participants:
                it.open()
            prefix.append(value)
            yield from self._recurse(depth + 1, prefix)
            prefix.pop()
            for it in participants:
                it.up()

    def _leapfrog(self, iters: List[_TrieIterator]) -> Iterator[Any]:
        """The one-variable leapfrog intersection of sorted key streams."""
        if not iters:
            return
        # Reset each iterator to the start of its current level.
        for it in iters:
            it.positions[-1] = 0
        if any(it.at_end() for it in iters):
            return
        order = sorted(range(len(iters)), key=lambda i: iters[i]._key_sort())
        iters = [iters[i] for i in order]
        p = 0
        max_sort = iters[-1]._key_sort()
        while True:
            it = iters[p]
            if it._key_sort() == max_sort:
                yield it.key()
                it.next()
                if it.at_end():
                    return
                max_sort = it._key_sort()
            else:
                it.seek(max_sort)
                if it.at_end():
                    return
                max_sort = it._key_sort()
            p = (p + 1) % len(iters)


def leapfrog_triejoin(atoms: Sequence[Tuple[Sequence[Row], Sequence[str]]],
                      variable_order: Sequence[str]) -> List[Row]:
    """Run a leapfrog triejoin; returns rows over ``variable_order``."""
    return list(LeapfrogTriejoin(atoms, variable_order).run())
