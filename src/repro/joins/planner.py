"""Conjunctive-query evaluation: binary plans vs. worst-case optimal joins.

The planner evaluates a conjunctive query (a list of :class:`Atom`) with one
of three strategies:

- ``"binary"`` — a greedy left-deep binary hash-join plan
  (smallest-relation-first, shared-variables-next — the classical strategy);
- ``"leapfrog"`` — Veldhuizen's worst-case optimal triejoin;
- ``"nested"`` — a naive enumerate-all-assignments reference evaluator, the
  ground truth of the agreement test suite;
- ``"auto"`` — :func:`choose_strategy` picks leapfrog vs. binary by a
  cardinality/cyclicity heuristic.

Atoms are *canonicalized* before planning: repeated variables within one
atom become an intra-atom equality filter plus a column drop, and column
orders that disagree with the global variable order are permuted, so any
atom shape is accepted. All value comparisons use
:func:`repro.model.values.sort_key` (the engine's value semantics: ``1``
joins ``1.0``, ``True`` does not join ``1``).

This is the engine's conjunction substrate (see
``repro.engine.expand._schedule_multiway``) as well as the benchmark-B2
workhorse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.joins.binary import hash_join
from repro.joins.leapfrog import build_sorted_trie, leapfrog_triejoin
from repro.model.relation import Relation
from repro.model.relation import row_key as _value_row_key
from repro.model.values import UnknownValueError, is_value, sort_key

Row = Tuple[Any, ...]

#: Strategies accepted by :func:`multiway_join` (besides "auto").
STRATEGIES = ("leapfrog", "binary", "nested")


@dataclass(frozen=True)
class Atom:
    """One conjunct: a set of rows with named variables.

    ``rows`` may be any sized, iterable collection of tuples (the planner
    only sizes and iterates it — the engine passes relation frozensets,
    or whole column-backed :class:`~repro.model.relation.Relation`
    objects, zero-copy: a columnar-native relation sizes without building
    its row dict, and the columnar planner reads its typed vectors
    straight off ``source.columns()``). ``source`` optionally records the
    identity of the relation the rows came from; callers that cache
    derived structures (the engine's sorted-trie cache) key on it. It
    never affects join results, and canonicalization clears it whenever
    the rows are rewritten.
    """

    rows: Any
    variables: Tuple[str, ...]
    source: Any = None

    @staticmethod
    def of(rows, variables, source: Any = None) -> "Atom":
        return Atom(tuple(rows), tuple(variables), source)


def row_key(row: Row) -> Tuple[Any, ...]:
    """The value-semantics identity of a row: the single definition of
    tuple equality shared by every strategy (and the engine's extraction
    path) — ``(1,)`` and ``(1.0,)`` collapse, ``(True,)`` does not.

    Keys are produced by :func:`repro.model.relation.row_key` (the same key
    space the :class:`Relation` container stores under), after validating
    that every element is a Rel value — non-values (e.g. raw Python tuples
    from tuple-variable bindings) raise :class:`UnknownValueError`, which
    the engine's extraction path catches to fall back."""
    for v in row:
        if not is_value(v) and not isinstance(v, Relation):
            raise UnknownValueError(
                f"not a Rel value: {v!r} ({type(v).__name__})"
            )
    return _value_row_key(row)


_row_key = row_key


def canonicalize_atom(atom: Atom) -> Atom:
    """Normalize repeated variables: filter rows on intra-atom equalities
    (value semantics) and drop the duplicate columns. Atoms without repeats
    are returned unchanged (keeping their ``source``)."""
    variables = atom.variables
    first: Dict[str, int] = {}
    keep: List[int] = []
    eqs: List[Tuple[int, int]] = []
    for i, v in enumerate(variables):
        if v in first:
            eqs.append((first[v], i))
        else:
            first[v] = i
            keep.append(i)
    if not eqs:
        return atom
    seen: Set[Tuple[Any, ...]] = set()
    rows: List[Row] = []
    for row in atom.rows:
        if any(sort_key(row[a]) != sort_key(row[b]) for a, b in eqs):
            continue
        proj = tuple(row[i] for i in keep)
        key = _row_key(proj)
        if key not in seen:
            seen.add(key)
            rows.append(proj)
    return Atom(tuple(rows), tuple(variables[i] for i in keep))


def _prepare(atoms: Sequence[Atom],
             output: Sequence[str]) -> Tuple[List[Atom], bool]:
    """Canonicalize atoms and strip zero-variable (pure filter) atoms.

    Returns ``(atoms, empty)`` where ``empty`` means the query is
    unsatisfiable (a filter atom with no rows). Raises :class:`ValueError`
    naming any ``output`` variable bound by no atom."""
    kept: List[Atom] = []
    empty = False
    for atom in atoms:
        canon = canonicalize_atom(atom)
        if canon.variables:
            kept.append(canon)
        elif not canon.rows:
            empty = True
    covered: Set[str] = set()
    for atom in kept:
        covered.update(atom.variables)
    missing = [v for v in output if v not in covered]
    if missing:
        raise ValueError(
            "output variable(s) "
            + ", ".join(repr(v) for v in missing)
            + " are not bound by any atom"
        )
    return kept, empty


def _project(rows: Sequence[Row], cols: Sequence[str],
             output: Sequence[str], distinct: bool = False) -> List[Row]:
    """Project onto ``output`` with value-semantics deduplication.

    ``distinct`` asserts the input rows are already ``row_key``-distinct
    AND that ``output`` covers every column (a pure permutation) — then
    the dedup pass is skipped. Callers must guarantee both."""
    idx = [list(cols).index(v) for v in output]
    if distinct and set(output) == set(cols):
        return [tuple(row[i] for i in idx) for row in rows]
    seen: Set[Tuple[Any, ...]] = set()
    out: List[Row] = []
    for row in rows:
        projected = tuple(row[i] for i in idx)
        key = _row_key(projected)
        if key not in seen:
            seen.add(key)
            out.append(projected)
    return out


def binary_plan_join(atoms: Sequence[Atom],
                     output: Sequence[str],
                     index_builder: Optional["IndexBuilder"] = None,
                     distinct_inputs: bool = False) -> List[Row]:
    """Greedy left-deep hash-join plan.

    Starts from the smallest atom, repeatedly joins the atom sharing the
    most variables with the partial result (ties: smaller first), and
    projects onto ``output``. The empty conjunction yields the unit
    relation ``[()]``.

    ``index_builder`` optionally supplies (cached) hash indexes for atoms
    that carry a ``source``: ``index_builder(atom, key_positions)`` must
    return a dict mapping the ``sort_key`` tuple of those positions to the
    atom's matching rows — exactly the build side :func:`hash_join` would
    construct. With a builder, unchanged relations are probed through a
    prebuilt index instead of being re-hashed on every evaluation (the
    binary-join analog of the leapfrog trie cache).
    """
    atoms, empty = _prepare(atoms, output)
    if empty:
        return []
    if not atoms:
        return [()]
    remaining = sorted(atoms, key=lambda a: len(a.rows))
    current_rows: List[Row] = list(remaining[0].rows)
    current_cols: Tuple[str, ...] = remaining[0].variables
    remaining = remaining[1:]
    while remaining:
        best_idx = None
        best_score = None
        for i, atom in enumerate(remaining):
            shared = len(set(atom.variables) & set(current_cols))
            score = (-shared, len(atom.rows))
            if best_score is None or score < best_score:
                best_score = score
                best_idx = i
        atom = remaining.pop(best_idx)
        shared_cols = [c for c in current_cols if c in atom.variables]
        if index_builder is not None and atom.source is not None \
                and shared_cols:
            current_rows, current_cols = _probe_indexed(
                current_rows, current_cols, atom, shared_cols, index_builder
            )
        else:
            current_rows, current_cols = hash_join(
                current_rows, current_cols, list(atom.rows), atom.variables
            )
    return _project(current_rows, current_cols, output,
                    distinct=distinct_inputs)


def _probe_indexed(current_rows: List[Row], current_cols: Tuple[str, ...],
                   atom: Atom, shared_cols: Sequence[str],
                   index_builder: "IndexBuilder") -> Tuple[List[Row], Tuple[str, ...]]:
    """Join the running result with ``atom`` by probing a prebuilt hash
    index on the shared variables. Output shape matches :func:`hash_join`:
    current columns first, then the atom's non-shared columns."""
    apos = tuple(atom.variables.index(c) for c in shared_cols)
    index = index_builder(atom, apos)
    cpos = [list(current_cols).index(c) for c in shared_cols]
    rest = [i for i, c in enumerate(atom.variables) if c not in shared_cols]
    out_cols = tuple(current_cols) + tuple(atom.variables[i] for i in rest)
    out: List[Row] = []
    for row in current_rows:
        key = tuple(sort_key(row[i]) for i in cpos)
        for match in index.get(key, ()):
            out.append(row + tuple(match[i] for i in rest))
    return out, out_cols


#: Signature of the engine's columnar hook: atom → ColumnSet | None.
ColumnsBuilder = Callable[[Atom], Any]


def columnar_plan_join(atoms: Sequence[Atom], output: Sequence[str],
                       columns_builder: Optional[ColumnsBuilder] = None,
                       as_columns: bool = False) -> Any:
    """Vectorized hash-join probe over typed column vectors.

    The columnar analog of :func:`binary_plan_join`: the same greedy
    pairwise order, but key matching, probe expansion, projection, and
    output dedup all run as whole-column numpy kernels
    (:func:`repro.model.columns.join_columnsets`). Returns ``None`` to
    decline — any participating atom not typeable, or a comparison the
    typed plane cannot do exactly — in which case the caller falls back to
    an interpreted strategy with identical semantics. ``columns_builder``
    maps an atom to its (cached) :class:`~repro.model.columns.ColumnSet`;
    by default atoms with a ``Relation`` source use the relation's memoized
    columns and sourceless atoms are sniffed fresh.
    """
    from repro.model import columns as _columns

    if not _columns.available():
        return None
    atoms, empty = _prepare(atoms, output)
    if empty:
        return []
    if not atoms:
        return [()]
    if any(not len(a.rows) for a in atoms):
        return []
    if columns_builder is None:
        columns_builder = default_columns_builder
    typed = []
    for atom in atoms:
        cs = columns_builder(atom)
        if cs is None:
            return None
        typed.append((cs, atom.variables))
    return _columns.join_columnsets(typed, tuple(output),
                                    as_columns=as_columns)


def default_columns_builder(atom: Atom) -> Any:
    """ColumnSet for an atom: via the source relation's memoized columns
    when the rows are the relation's own (zero-copy atoms), else a fresh
    sniffing pass over the atom's rows."""
    from repro.model.columns import ColumnSet

    if isinstance(atom.source, Relation):
        return atom.source.columns()
    return ColumnSet.from_rows(atom.rows if isinstance(atom.rows, (list, tuple))
                               else list(atom.rows))


def nested_loop_plan_join(atoms: Sequence[Atom],
                          output: Sequence[str]) -> List[Row]:
    """Reference evaluator: enumerate variable assignments atom by atom with
    no ordering tricks and no indexes. Exponential; the agreement suite's
    ground truth."""
    atoms, empty = _prepare(atoms, output)
    if empty:
        return []
    partial: List[Dict[str, Any]] = [{}]
    for atom in atoms:
        extended: List[Dict[str, Any]] = []
        for binding in partial:
            for row in atom.rows:
                merged = dict(binding)
                ok = True
                for var, value in zip(atom.variables, row):
                    if var in merged:
                        if sort_key(merged[var]) != sort_key(value):
                            ok = False
                            break
                    else:
                        merged[var] = value
                if ok:
                    extended.append(merged)
        partial = extended
    seen: Set[Tuple[Any, ...]] = set()
    out: List[Row] = []
    for binding in partial:
        projected = tuple(binding[v] for v in output)
        key = _row_key(projected)
        if key not in seen:
            seen.add(key)
            out.append(projected)
    return out


def _global_variable_order(atoms: Sequence[Atom]) -> List[str]:
    """A good global variable order for the leapfrog triejoin.

    Tries the topological order implied by the atoms' column sequences
    (when one exists, every permutation below is the identity — tries built
    straight from the stored rows); on conflicting column orders it falls
    back to frequency order and the atoms are permuted to fit.
    """
    succ: Dict[str, Set[str]] = {}
    indeg: Dict[str, int] = {}
    freq: Dict[str, int] = {}
    for atom in atoms:
        for v in atom.variables:
            succ.setdefault(v, set())
            indeg.setdefault(v, 0)
            freq[v] = freq.get(v, 0) + 1
        for a, b in zip(atom.variables, atom.variables[1:]):
            if b not in succ[a]:
                succ[a].add(b)
                indeg[b] += 1
    ready = sorted([v for v, d in indeg.items() if d == 0],
                   key=lambda v: -freq[v])
    order: List[str] = []
    while ready:
        v = ready.pop(0)
        order.append(v)
        for w in sorted(succ[v], key=lambda x: -freq[x]):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(order) != len(indeg):
        # Cyclic column-order constraints (e.g. R(x,y) ⋈ S(y,x)): no shared
        # subsequence order exists, so pick frequency-first and permute.
        order = sorted(indeg, key=lambda v: (-freq[v], v))
    return order


def atom_permutation(atom: Atom, order: Sequence[str]) -> Tuple[int, ...]:
    """Column permutation aligning ``atom`` with the global ``order``."""
    pos = {v: i for i, v in enumerate(order)}
    return tuple(sorted(range(len(atom.variables)),
                        key=lambda i: pos[atom.variables[i]]))


def permuted_rows(atom: Atom, perm: Sequence[int]) -> List[Row]:
    """The atom's rows with columns reordered by ``perm``."""
    if tuple(perm) == tuple(range(len(perm))):
        return list(atom.rows)
    return [tuple(row[i] for i in perm) for row in atom.rows]


def is_cyclic(atoms: Sequence[Atom]) -> bool:
    """α-cyclicity of the query hypergraph via GYO ear removal.

    An atom is an *ear* when its non-exclusive variables are covered by a
    single other atom; a hypergraph that does not reduce to nothing is
    cyclic — the shapes (triangles, cliques) where binary plans must
    materialize an intermediate the output does not bound."""
    edges = [set(a.variables) for a in atoms if a.variables]
    changed = True
    while changed and edges:
        changed = False
        for i, edge in enumerate(edges):
            others = edges[:i] + edges[i + 1:]
            if not others:
                edges.pop(i)
                changed = True
                break
            rest: Set[str] = set().union(*others)
            witness = edge & rest
            if any(witness <= other for other in others):
                edges.pop(i)
                changed = True
                break
    return bool(edges)


def choose_strategy(atoms: Sequence[Atom],
                    leapfrog_min_rows: int = 128) -> str:
    """Cardinality heuristic for ``strategy="auto"``.

    Leapfrog pays off when the query hypergraph is cyclic (a binary plan's
    intermediate can exceed the AGM bound) and the inputs are large enough
    to amortize trie building; otherwise the greedy binary plan wins."""
    sized = [a for a in atoms if a.variables]
    total = sum(len(a.rows) for a in sized)
    if total < leapfrog_min_rows:
        return "binary"
    return "leapfrog" if is_cyclic(sized) else "binary"


#: Signature of the engine's trie-cache hook: (atom, permutation) → trie.
TrieBuilder = Callable[[Atom, Tuple[int, ...]], Any]

#: Signature of the engine's hash-index cache hook:
#: (atom, key positions) → {sort_key tuple: [rows]}.
IndexBuilder = Callable[[Atom, Tuple[int, ...]], Dict[Tuple[Any, ...], List[Row]]]


def multiway_join(atoms: Sequence[Atom], output: Sequence[str],
                  strategy: str = "leapfrog",
                  trie_builder: Optional[TrieBuilder] = None,
                  index_builder: Optional[IndexBuilder] = None,
                  distinct_inputs: bool = False) -> List[Row]:
    """Evaluate a conjunctive query with the chosen strategy.

    ``strategy``: ``"leapfrog"`` (worst-case optimal), ``"binary"`` (greedy
    hash-join plan), ``"nested"`` (naive reference), or ``"auto"``
    (heuristic pick between the first two). ``trie_builder`` /
    ``index_builder`` optionally supply cached sorted tries (leapfrog) or
    hash indexes (binary) for atoms that carry a ``source``.
    """
    if strategy == "auto":
        strategy = choose_strategy(atoms)
    if strategy == "binary":
        return binary_plan_join(atoms, output, index_builder=index_builder,
                                distinct_inputs=distinct_inputs)
    if strategy == "nested":
        return nested_loop_plan_join(atoms, output)
    if strategy != "leapfrog":
        raise ValueError(f"unknown strategy {strategy!r}")
    atoms, empty = _prepare(atoms, output)
    if empty:
        return []
    if not atoms:
        return [()]
    order = _global_variable_order(atoms)
    entries: List[Tuple[Any, Tuple[str, ...]]] = []
    for atom in atoms:
        perm = atom_permutation(atom, order)
        variables = tuple(atom.variables[i] for i in perm)
        if trie_builder is not None and atom.source is not None:
            entries.append((trie_builder(atom, perm), variables))
        else:
            entries.append((permuted_rows(atom, perm), variables))
    rows = leapfrog_triejoin(entries, order)
    return _project(rows, order, output, distinct=distinct_inputs)
