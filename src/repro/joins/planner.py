"""Conjunctive-query evaluation: binary plans vs. worst-case optimal joins.

The planner evaluates a conjunctive query (a list of :class:`Atom`) either
with a greedy left-deep binary hash-join plan (smallest-relation-first,
shared-variables-next — the classical strategy) or with the leapfrog
triejoin. Benchmark B2 compares the two on triangle queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.joins.binary import hash_join
from repro.joins.leapfrog import leapfrog_triejoin

Row = Tuple[Any, ...]


@dataclass(frozen=True)
class Atom:
    """One conjunct: a set of rows with named variables."""

    rows: Tuple[Row, ...]
    variables: Tuple[str, ...]

    @staticmethod
    def of(rows, variables) -> "Atom":
        return Atom(tuple(rows), tuple(variables))


def binary_plan_join(atoms: Sequence[Atom],
                     output: Sequence[str]) -> List[Row]:
    """Greedy left-deep hash-join plan.

    Starts from the smallest atom, repeatedly joins the atom sharing the
    most variables with the partial result (ties: smaller first), and
    projects onto ``output``.
    """
    remaining = sorted(atoms, key=lambda a: len(a.rows))
    current_rows: List[Row] = list(remaining[0].rows)
    current_cols: Tuple[str, ...] = remaining[0].variables
    remaining = remaining[1:]
    while remaining:
        best_idx = None
        best_score = None
        for i, atom in enumerate(remaining):
            shared = len(set(atom.variables) & set(current_cols))
            score = (-shared, len(atom.rows))
            if best_score is None or score < best_score:
                best_score = score
                best_idx = i
        atom = remaining.pop(best_idx)
        current_rows, current_cols = hash_join(
            current_rows, current_cols, list(atom.rows), atom.variables
        )
    idx = [current_cols.index(v) for v in output]
    seen: Set[Row] = set()
    out: List[Row] = []
    for row in current_rows:
        projected = tuple(row[i] for i in idx)
        if projected not in seen:
            seen.add(projected)
            out.append(projected)
    return out


def _global_variable_order(atoms: Sequence[Atom]) -> List[str]:
    """A variable order compatible with every atom's column order.

    Topological sort of the precedence constraints implied by each atom's
    variable sequence; falls back to frequency order when unconstrained.
    """
    succ: Dict[str, Set[str]] = {}
    indeg: Dict[str, int] = {}
    freq: Dict[str, int] = {}
    for atom in atoms:
        for v in atom.variables:
            succ.setdefault(v, set())
            indeg.setdefault(v, 0)
            freq[v] = freq.get(v, 0) + 1
        for a, b in zip(atom.variables, atom.variables[1:]):
            if b not in succ[a]:
                succ[a].add(b)
                indeg[b] += 1
    ready = sorted([v for v, d in indeg.items() if d == 0],
                   key=lambda v: -freq[v])
    order: List[str] = []
    while ready:
        v = ready.pop(0)
        order.append(v)
        for w in sorted(succ[v], key=lambda x: -freq[x]):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    if len(order) != len(indeg):
        raise ValueError("atom variable orders are cyclic; reorder columns")
    return order


def multiway_join(atoms: Sequence[Atom], output: Sequence[str],
                  strategy: str = "leapfrog") -> List[Row]:
    """Evaluate a conjunctive query with the chosen strategy.

    ``strategy``: ``"leapfrog"`` (worst-case optimal) or ``"binary"``
    (greedy hash-join plan).
    """
    if strategy == "binary":
        return binary_plan_join(atoms, output)
    if strategy != "leapfrog":
        raise ValueError(f"unknown strategy {strategy!r}")
    order = _global_variable_order(atoms)
    rows = leapfrog_triejoin(
        [(list(a.rows), list(a.variables)) for a in atoms], order
    )
    idx = [order.index(v) for v in output]
    seen: Set[Row] = set()
    out: List[Row] = []
    for row in rows:
        projected = tuple(row[i] for i in idx)
        if projected not in seen:
            seen.add(projected)
            out.append(projected)
    return out
