"""Classical binary join algorithms over column-named tuple sets.

These operate on plain Python data: a *relation* is an iterable of tuples
plus a tuple of column names. They form the baseline against which the
worst-case optimal join is measured (benchmark B2), mirroring the paper's
claim that WCOJ algorithms are what make many-joins GNF practical.

All three algorithms key their joins on :func:`repro.model.values.sort_key`,
the engine's value semantics: ``1`` and ``1.0`` join (numeric equality),
``True`` and ``1`` do not (booleans are a distinct sort). This keeps
``hash_join``, ``sort_merge_join`` and ``nested_loop_join`` in exact
agreement with each other and with the leapfrog triejoin.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.model.values import sort_key

Row = Tuple[Any, ...]


def _common_columns(cols_a: Sequence[str], cols_b: Sequence[str]) -> List[str]:
    return [c for c in cols_a if c in cols_b]


def _key_at(row: Row, indices: Sequence[int]) -> Tuple[Any, ...]:
    """Value-semantics join key for the given positions of one row."""
    return tuple(sort_key(row[i]) for i in indices)


def hash_join(rows_a: Iterable[Row], cols_a: Sequence[str],
              rows_b: Iterable[Row], cols_b: Sequence[str]
              ) -> Tuple[List[Row], Tuple[str, ...]]:
    """Natural hash join on shared column names.

    Builds a hash table on the smaller input side's join key, probes with
    the other side. Output columns: ``cols_a`` followed by ``cols_b``'s
    non-shared columns.
    """
    rows_a = list(rows_a)
    rows_b = list(rows_b)
    shared = _common_columns(cols_a, cols_b)
    ia = [list(cols_a).index(c) for c in shared]
    ib = [list(cols_b).index(c) for c in shared]
    rest_b = [i for i, c in enumerate(cols_b) if c not in shared]
    out_cols = tuple(cols_a) + tuple(cols_b[i] for i in rest_b)

    if not shared:  # degenerate: Cartesian product
        out = [a + tuple(b[i] for i in rest_b) for a in rows_a for b in rows_b]
        return out, out_cols

    build_left = len(rows_a) <= len(rows_b)
    build_rows, build_idx = (rows_a, ia) if build_left else (rows_b, ib)
    probe_rows, probe_idx = (rows_b, ib) if build_left else (rows_a, ia)

    table: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in build_rows:
        table.setdefault(_key_at(row, build_idx), []).append(row)

    out: List[Row] = []
    for row in probe_rows:
        key = _key_at(row, probe_idx)
        for match in table.get(key, ()):
            a, b = (match, row) if build_left else (row, match)
            out.append(a + tuple(b[i] for i in rest_b))
    return out, out_cols


def sort_merge_join(rows_a: Iterable[Row], cols_a: Sequence[str],
                    rows_b: Iterable[Row], cols_b: Sequence[str]
                    ) -> Tuple[List[Row], Tuple[str, ...]]:
    """Natural sort-merge join on shared column names."""
    rows_a = list(rows_a)
    rows_b = list(rows_b)
    shared = _common_columns(cols_a, cols_b)
    if not shared:
        return hash_join(rows_a, cols_a, rows_b, cols_b)
    ia = [list(cols_a).index(c) for c in shared]
    ib = [list(cols_b).index(c) for c in shared]
    rest_b = [i for i, c in enumerate(cols_b) if c not in shared]
    out_cols = tuple(cols_a) + tuple(cols_b[i] for i in rest_b)

    def key_a(row: Row):
        return _key_at(row, ia)

    def key_b(row: Row):
        return _key_at(row, ib)

    sa = sorted(rows_a, key=key_a)
    sb = sorted(rows_b, key=key_b)
    out: List[Row] = []
    i = j = 0
    while i < len(sa) and j < len(sb):
        ka, kb = key_a(sa[i]), key_b(sb[j])
        if ka < kb:
            i += 1
        elif ka > kb:
            j += 1
        else:
            i_end = i
            while i_end < len(sa) and key_a(sa[i_end]) == ka:
                i_end += 1
            j_end = j
            while j_end < len(sb) and key_b(sb[j_end]) == kb:
                j_end += 1
            for a in sa[i:i_end]:
                for b in sb[j:j_end]:
                    out.append(a + tuple(b[i2] for i2 in rest_b))
            i, j = i_end, j_end
    return out, out_cols


def nested_loop_join(rows_a: Iterable[Row], cols_a: Sequence[str],
                     rows_b: Iterable[Row], cols_b: Sequence[str]
                     ) -> Tuple[List[Row], Tuple[str, ...]]:
    """Naive nested-loop natural join (for testing and tiny inputs)."""
    rows_a = list(rows_a)
    rows_b = list(rows_b)
    shared = _common_columns(cols_a, cols_b)
    ia = [list(cols_a).index(c) for c in shared]
    ib = [list(cols_b).index(c) for c in shared]
    rest_b = [i for i, c in enumerate(cols_b) if c not in shared]
    out_cols = tuple(cols_a) + tuple(cols_b[i] for i in rest_b)
    out: List[Row] = []
    for a in rows_a:
        for b in rows_b:
            if all(sort_key(a[x]) == sort_key(b[y]) for x, y in zip(ia, ib)):
                out.append(a + tuple(b[i] for i in rest_b))
    return out, out_cols
