"""Join algorithms: the performance substrate behind GNF (Section 7).

The paper: "The ORM-inspired approach to data modeling entails splitting
data into many relations and performing many joins. This can be done without
sacrificing performance by embracing factorized representations [39] and
worst-case optimal joins [38, 47]; the existence of this toolbox enabled
many of Rel's design decisions."

This package provides that toolbox:

- :func:`hash_join` / :func:`sort_merge_join` — classical binary joins;
- :class:`LeapfrogTriejoin` — the worst-case optimal multiway join of
  Veldhuizen [47], walking sorted tries variable by variable;
- :func:`multiway_join` — a generic conjunctive-query evaluator with a
  selectable strategy (binary plan vs. leapfrog), used by the WCOJ
  benchmarks (triangle counting and friends).
"""

from repro.joins.binary import hash_join, nested_loop_join, sort_merge_join
from repro.joins.leapfrog import LeapfrogTriejoin, build_sorted_trie, leapfrog_triejoin
from repro.joins.planner import (
    Atom,
    binary_plan_join,
    canonicalize_atom,
    choose_strategy,
    is_cyclic,
    multiway_join,
    nested_loop_plan_join,
)

__all__ = [
    "Atom",
    "LeapfrogTriejoin",
    "binary_plan_join",
    "build_sorted_trie",
    "canonicalize_atom",
    "choose_strategy",
    "hash_join",
    "is_cyclic",
    "leapfrog_triejoin",
    "multiway_join",
    "nested_loop_join",
    "nested_loop_plan_join",
    "sort_merge_join",
]
