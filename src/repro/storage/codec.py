"""Stable serialization of Rel values, rows, and relations.

The wire format is JSON with one-key tag objects for the sorts JSON cannot
represent natively — chosen over a binary format because WAL records and
checkpoints become debuggable with ``strings``/``jq``, and the hot path
(bulk load) writes *one* record per batch, so encode throughput is not the
bottleneck the per-op path would make it.

Sort fidelity matters more than compactness here: the engine's value
semantics keep ``True`` distinct from ``1`` while merging ``1`` and
``1.0`` (:func:`repro.model.values.row_key`), and JSON happens to agree —
``true`` and ``1`` are different tokens, ``1.0`` round-trips as a float.
Symbols, entities, and second-order relation elements get tag objects:

========================  =======================================
value                     encoding
========================  =======================================
``bool/int/float/str``    the JSON scalar itself
``Symbol("Name")``        ``{"s": "Name"}``
``Entity("Ns", key)``     ``{"e": ["Ns", <encoded key>]}``
``Relation([...])``       ``{"r": [<encoded rows, sorted>]}``
========================  =======================================

Rows are JSON arrays; relations serialize their rows in
:func:`~repro.model.values.tuple_sort_key` order (via
``Relation.sorted_tuples``), so equal relations always produce identical
bytes — the "stable serialization" checkpoints and tests depend on.

**Columnar blocks (PR 7).** Relations whose rows live on the typed
columnar plane (:meth:`repro.model.relation.Relation.columns`) serialize
as one contiguous block per column instead of a row list::

    {"c": {"tags": ["int", "str"], "cols": [[1, 2, ...], ["a", "b", ...]]}}

The block skips the per-value ``encode_value`` dispatch entirely (a
column's tag certifies every element is a plain JSON scalar) and sorts
rows with one vectorized lexsort instead of 100k ``tuple_sort_key``
calls; decode rebuilds tuples with a single ``zip`` and — when no
``bool`` column is present, so ``row_key`` is the identity — adopts them
via the trusted keyed constructor without re-keying each row.
:func:`decode_relation` accepts both formats forever, so checkpoints and
WALs written by the row codec (PR 6) reopen unchanged; writers fall back
to the row format whenever a relation is not typeable (mixed arity,
nested relations, symbols/entities, …) or the columnar plane is
unavailable (no numpy, ``REPRO_COLUMNAR=off``).

**Interned string tables (PR 8).** Columnar blocks with ``str`` columns
additionally carry one deduplicated, lexicographically-sorted ``strings``
table, with the columns holding integer positions into it::

    {"c": {"tags": ["int", "str"], "cols": [[1, 2, ...], [0, 0, 1, ...]],
           "strings": ["a", "b", ...]}}

Encode reads the distinct intern codes straight out of the typed vectors
(the process-wide interner of :mod:`repro.model.columns` — each distinct
string is decoded once, not once per row); decode bulk-interns the table
and remaps integers, adopting the result as a columnar-native relation.
All three formats decode forever (blocks self-tag via ``strings``); the
``INTERN_TABLES`` switch below exists for benchmark A/B only.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.model import columns as _columns
from repro.model.relation import Relation
from repro.model.values import Entity, Symbol
from repro.storage.errors import CodecError

_SCALARS = (bool, int, float, str)

#: Tri-state switch for columnar relation blocks: ``None`` follows the
#: columnar plane's availability (numpy present and not ablated via
#: ``REPRO_COLUMNAR=off``); ``False``/``True`` force the row/columnar
#: format. Consulted at every :func:`encode_relation` call so benchmarks
#: can A/B the codecs in-process; decode needs no switch (self-tagging).
COLUMNAR_BLOCKS: Optional[bool] = None

#: Tri-state switch for per-block string tables (PR 8): inside a columnar
#: block, ``str`` columns are written as small local integer codes plus
#: one deduplicated ``strings`` table, instead of repeating every string
#: per row. Encode shares the process-wide interner
#: (:mod:`repro.model.columns`): the distinct codes already sitting in the
#: typed vectors index the table directly, so a string-heavy relation is
#: materialized once per *distinct* string rather than once per row.
#: Decode bulk-interns the table once and rebuilds the vectors by integer
#: remap — producing a columnar-native relation without touching a row.
#: ``None`` follows the columnar plane's availability; ``False``/``True``
#: force the inline/interned format (benchmark A/B). Decode needs no
#: switch (blocks self-tag via the ``strings`` key) and accepts every
#: older format forever.
INTERN_TABLES: Optional[bool] = None


def encode_value(value: Any) -> Any:
    """One Rel value → its JSON-able form (see the module table)."""
    if type(value) in (bool, int, float, str):
        return value
    if isinstance(value, Relation):
        return {"r": [encode_row(row) for row in value.sorted_tuples()]}
    if isinstance(value, Symbol):
        return {"s": value.name}
    if isinstance(value, Entity):
        return {"e": [value.namespace, encode_value(value.key)]}
    if isinstance(value, _SCALARS):  # bool/int/float/str subclasses
        raise CodecError(
            f"refusing to serialize scalar subclass {type(value).__name__}: "
            f"it would decode as a plain {type(value).__mro__[1].__name__}"
        )
    raise CodecError(f"not a serializable Rel value: {value!r}")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, dict):
        if len(obj) != 1:
            raise CodecError(f"malformed value tag: {obj!r}")
        tag, payload = next(iter(obj.items()))
        if tag == "r":
            return Relation(decode_row(row) for row in payload)
        if tag == "s":
            return Symbol(payload)
        if tag == "e":
            namespace, key = payload
            return Entity(namespace, decode_value(key))
        raise CodecError(f"unknown value tag {tag!r}")
    if isinstance(obj, list):
        raise CodecError(f"bare list is not a value: {obj!r}")
    return obj


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(v) for v in row]


def decode_row(obj: Sequence[Any]) -> tuple:
    return tuple([decode_value(v) for v in obj])


def encode_relation(rel: Relation,
                    *, columnar: Optional[bool] = None
                    ) -> Union[List[List[Any]], dict]:
    """A relation as either a columnar block (typed relations) or a sorted
    list of encoded rows — deterministic bytes either way: the block's row
    order is a pure function of the stored rows (lexicographic over the
    typed columns), the row list is ``tuple_sort_key`` order."""
    if columnar is None:
        columnar = COLUMNAR_BLOCKS
    if columnar or (columnar is None and _columns.available()):
        cols = rel.columns()
        if cols is not None:
            order = cols.row_order()
            intern = INTERN_TABLES
            if intern is None:
                intern = True
            if intern and "str" in cols.tags:
                return _encode_interned_block(cols, order)
            return {"c": {
                "tags": list(cols.tags),
                "cols": [_encode_column(cols.tags[i], cols.arrays[i][order])
                         for i in range(cols.arity)],
            }}
    return [encode_row(row) for row in rel.sorted_tuples()]


def _encode_interned_block(cols: Any, order: Any) -> dict:
    """A columnar block with one shared per-block string table.

    The table holds each distinct string once (sorted lexicographically,
    so equal relations produce identical bytes regardless of interner
    history); ``str`` columns carry int positions into it. Building it
    costs one ``np.unique`` over the stored intern codes plus one decode
    per *distinct* string — never one per row."""
    import numpy as _np

    str_idx = [i for i, t in enumerate(cols.tags) if t == "str"]
    codes = _np.unique(_np.concatenate([cols.arrays[i] for i in str_idx]))
    strings = [_columns.decode_string(c) for c in codes.tolist()]
    by_text = sorted(range(len(strings)), key=strings.__getitem__)
    table = [strings[j] for j in by_text]
    rank = _np.empty(len(by_text), dtype=_np.int64)
    rank[_np.asarray(by_text, dtype=_np.int64)] = _np.arange(len(by_text))
    out_cols: List[Any] = []
    for i, tag in enumerate(cols.tags):
        arr = cols.arrays[i][order]
        if tag == "str":
            out_cols.append(rank[_np.searchsorted(codes, arr)].tolist())
        else:
            out_cols.append(_encode_column(tag, arr))
    return {"c": {"tags": list(cols.tags), "cols": out_cols,
                  "strings": table}}


def _encode_column(tag: str, arr: Any) -> List[Any]:
    """One sorted column vector → a list of plain JSON scalars."""
    if tag == "bool":
        return [v == 1 for v in arr.tolist()]
    if tag == "str":
        return [_columns.decode_string(c) for c in arr.tolist()]
    return arr.tolist()  # int64 / float64 → exact Python ints / floats


def decode_relation(obj: Union[Iterable[Sequence[Any]], dict]) -> Relation:
    # Decoded rows contain only values this codec itself produced, so the
    # trusted constructors apply: no element re-validation. Checkpoint
    # decode is the reopen hot path.
    if isinstance(obj, dict):
        try:
            block = obj["c"]
            tags, cols = block["tags"], block["cols"]
        except (KeyError, TypeError) as exc:
            raise CodecError(f"malformed relation block: {obj!r}") from exc
        if len(tags) != len(cols) or not cols:
            raise CodecError(f"malformed relation block: {obj!r}")
        strings = block.get("strings")
        if strings is not None:
            return _decode_interned_block(tags, cols, strings)
        rows = list(zip(*cols))
        if "bool" in tags:
            # row_key tags booleans; re-key through the generic path.
            return Relation._from_rows(rows)
        # Bool-free rows are their own row_keys, and a block's rows are
        # distinct by construction (they came out of a Relation): adopt
        # the mapping without hashing every row twice.
        return Relation._from_keyed(dict(zip(rows, rows)))
    return Relation._from_rows(map(decode_row, obj))


_NUMERIC_DTYPES = {"bool": "uint8", "int": "int64", "float": "float64"}


def _decode_interned_block(tags: Sequence[str], cols: Sequence[Any],
                           strings: Sequence[str]) -> Relation:
    """Decode a string-table block.

    With the typed plane available this is the checkpoint-reopen fast
    path: the table is interned in one bulk call, ``str`` columns rebuild
    by integer remap, and the result is adopted as a columnar-*native*
    relation — no Python row is ever constructed. Without it, local codes
    resolve through the table row-by-row (same bytes, same relation)."""
    if _columns.available():
        import numpy as _np

        interned = _np.asarray(_columns._encode_strings(list(strings)),
                               dtype=_np.int64)
        arrays = []
        for tag, col in zip(tags, cols):
            if tag == "str":
                arrays.append(interned[_np.asarray(col, dtype=_np.int64)])
            else:
                arrays.append(_np.asarray(col,
                                          dtype=_NUMERIC_DTYPES.get(tag)))
        n = len(cols[0]) if cols else 0
        return Relation.from_columns(
            _columns.ColumnSet(tuple(tags), tuple(arrays), n))
    resolved = [[strings[c] for c in col] if tag == "str" else col
                for tag, col in zip(tags, cols)]
    rows = list(zip(*resolved))
    if "bool" in tags:
        return Relation._from_rows(rows)
    return Relation._from_keyed(dict(zip(rows, rows)))


def dump_payload(obj: Any) -> bytes:
    """A record payload (a JSON-able dict) → canonical UTF-8 bytes."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True,
                      ensure_ascii=False).encode("utf-8")


def load_payload(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable record payload: {exc}") from exc
