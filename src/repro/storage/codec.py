"""Stable serialization of Rel values, rows, and relations.

The wire format is JSON with one-key tag objects for the sorts JSON cannot
represent natively — chosen over a binary format because WAL records and
checkpoints become debuggable with ``strings``/``jq``, and the hot path
(bulk load) writes *one* record per batch, so encode throughput is not the
bottleneck the per-op path would make it.

Sort fidelity matters more than compactness here: the engine's value
semantics keep ``True`` distinct from ``1`` while merging ``1`` and
``1.0`` (:func:`repro.model.values.row_key`), and JSON happens to agree —
``true`` and ``1`` are different tokens, ``1.0`` round-trips as a float.
Symbols, entities, and second-order relation elements get tag objects:

========================  =======================================
value                     encoding
========================  =======================================
``bool/int/float/str``    the JSON scalar itself
``Symbol("Name")``        ``{"s": "Name"}``
``Entity("Ns", key)``     ``{"e": ["Ns", <encoded key>]}``
``Relation([...])``       ``{"r": [<encoded rows, sorted>]}``
========================  =======================================

Rows are JSON arrays; relations serialize their rows in
:func:`~repro.model.values.tuple_sort_key` order (via
``Relation.sorted_tuples``), so equal relations always produce identical
bytes — the "stable serialization" checkpoints and tests depend on.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Sequence

from repro.model.relation import Relation
from repro.model.values import Entity, Symbol
from repro.storage.errors import CodecError

_SCALARS = (bool, int, float, str)


def encode_value(value: Any) -> Any:
    """One Rel value → its JSON-able form (see the module table)."""
    if type(value) in (bool, int, float, str):
        return value
    if isinstance(value, Relation):
        return {"r": [encode_row(row) for row in value.sorted_tuples()]}
    if isinstance(value, Symbol):
        return {"s": value.name}
    if isinstance(value, Entity):
        return {"e": [value.namespace, encode_value(value.key)]}
    if isinstance(value, _SCALARS):  # bool/int/float/str subclasses
        raise CodecError(
            f"refusing to serialize scalar subclass {type(value).__name__}: "
            f"it would decode as a plain {type(value).__mro__[1].__name__}"
        )
    raise CodecError(f"not a serializable Rel value: {value!r}")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, dict):
        if len(obj) != 1:
            raise CodecError(f"malformed value tag: {obj!r}")
        tag, payload = next(iter(obj.items()))
        if tag == "r":
            return Relation(decode_row(row) for row in payload)
        if tag == "s":
            return Symbol(payload)
        if tag == "e":
            namespace, key = payload
            return Entity(namespace, decode_value(key))
        raise CodecError(f"unknown value tag {tag!r}")
    if isinstance(obj, list):
        raise CodecError(f"bare list is not a value: {obj!r}")
    return obj


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(v) for v in row]


def decode_row(obj: Sequence[Any]) -> tuple:
    return tuple([decode_value(v) for v in obj])


def encode_relation(rel: Relation) -> List[List[Any]]:
    """A relation as a sorted list of encoded rows (deterministic bytes)."""
    return [encode_row(row) for row in rel.sorted_tuples()]


def decode_relation(rows: Iterable[Sequence[Any]]) -> Relation:
    # Decoded rows contain only values this codec itself produced, so the
    # trusted constructor applies: dedup by row_key without re-validating
    # every element. Checkpoint decode is the reopen hot path.
    return Relation._from_rows(map(decode_row, rows))


def dump_payload(obj: Any) -> bytes:
    """A record payload (a JSON-able dict) → canonical UTF-8 bytes."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True,
                      ensure_ascii=False).encode("utf-8")


def load_payload(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable record payload: {exc}") from exc
