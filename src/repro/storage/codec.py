"""Stable serialization of Rel values, rows, and relations.

The wire format is JSON with one-key tag objects for the sorts JSON cannot
represent natively — chosen over a binary format because WAL records and
checkpoints become debuggable with ``strings``/``jq``, and the hot path
(bulk load) writes *one* record per batch, so encode throughput is not the
bottleneck the per-op path would make it.

Sort fidelity matters more than compactness here: the engine's value
semantics keep ``True`` distinct from ``1`` while merging ``1`` and
``1.0`` (:func:`repro.model.values.row_key`), and JSON happens to agree —
``true`` and ``1`` are different tokens, ``1.0`` round-trips as a float.
Symbols, entities, and second-order relation elements get tag objects:

========================  =======================================
value                     encoding
========================  =======================================
``bool/int/float/str``    the JSON scalar itself
``Symbol("Name")``        ``{"s": "Name"}``
``Entity("Ns", key)``     ``{"e": ["Ns", <encoded key>]}``
``Relation([...])``       ``{"r": [<encoded rows, sorted>]}``
========================  =======================================

Rows are JSON arrays; relations serialize their rows in
:func:`~repro.model.values.tuple_sort_key` order (via
``Relation.sorted_tuples``), so equal relations always produce identical
bytes — the "stable serialization" checkpoints and tests depend on.

**Columnar blocks (PR 7).** Relations whose rows live on the typed
columnar plane (:meth:`repro.model.relation.Relation.columns`) serialize
as one contiguous block per column instead of a row list::

    {"c": {"tags": ["int", "str"], "cols": [[1, 2, ...], ["a", "b", ...]]}}

The block skips the per-value ``encode_value`` dispatch entirely (a
column's tag certifies every element is a plain JSON scalar) and sorts
rows with one vectorized lexsort instead of 100k ``tuple_sort_key``
calls; decode rebuilds tuples with a single ``zip`` and — when no
``bool`` column is present, so ``row_key`` is the identity — adopts them
via the trusted keyed constructor without re-keying each row.
:func:`decode_relation` accepts both formats forever, so checkpoints and
WALs written by the row codec (PR 6) reopen unchanged; writers fall back
to the row format whenever a relation is not typeable (mixed arity,
nested relations, symbols/entities, …) or the columnar plane is
unavailable (no numpy, ``REPRO_COLUMNAR=off``).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.model import columns as _columns
from repro.model.relation import Relation
from repro.model.values import Entity, Symbol
from repro.storage.errors import CodecError

_SCALARS = (bool, int, float, str)

#: Tri-state switch for columnar relation blocks: ``None`` follows the
#: columnar plane's availability (numpy present and not ablated via
#: ``REPRO_COLUMNAR=off``); ``False``/``True`` force the row/columnar
#: format. Consulted at every :func:`encode_relation` call so benchmarks
#: can A/B the codecs in-process; decode needs no switch (self-tagging).
COLUMNAR_BLOCKS: Optional[bool] = None


def encode_value(value: Any) -> Any:
    """One Rel value → its JSON-able form (see the module table)."""
    if type(value) in (bool, int, float, str):
        return value
    if isinstance(value, Relation):
        return {"r": [encode_row(row) for row in value.sorted_tuples()]}
    if isinstance(value, Symbol):
        return {"s": value.name}
    if isinstance(value, Entity):
        return {"e": [value.namespace, encode_value(value.key)]}
    if isinstance(value, _SCALARS):  # bool/int/float/str subclasses
        raise CodecError(
            f"refusing to serialize scalar subclass {type(value).__name__}: "
            f"it would decode as a plain {type(value).__mro__[1].__name__}"
        )
    raise CodecError(f"not a serializable Rel value: {value!r}")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, dict):
        if len(obj) != 1:
            raise CodecError(f"malformed value tag: {obj!r}")
        tag, payload = next(iter(obj.items()))
        if tag == "r":
            return Relation(decode_row(row) for row in payload)
        if tag == "s":
            return Symbol(payload)
        if tag == "e":
            namespace, key = payload
            return Entity(namespace, decode_value(key))
        raise CodecError(f"unknown value tag {tag!r}")
    if isinstance(obj, list):
        raise CodecError(f"bare list is not a value: {obj!r}")
    return obj


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(v) for v in row]


def decode_row(obj: Sequence[Any]) -> tuple:
    return tuple([decode_value(v) for v in obj])


def encode_relation(rel: Relation,
                    *, columnar: Optional[bool] = None
                    ) -> Union[List[List[Any]], dict]:
    """A relation as either a columnar block (typed relations) or a sorted
    list of encoded rows — deterministic bytes either way: the block's row
    order is a pure function of the stored rows (lexicographic over the
    typed columns), the row list is ``tuple_sort_key`` order."""
    if columnar is None:
        columnar = COLUMNAR_BLOCKS
    if columnar or (columnar is None and _columns.available()):
        cols = rel.columns()
        if cols is not None:
            order = cols.row_order()
            return {"c": {
                "tags": list(cols.tags),
                "cols": [_encode_column(cols.tags[i], cols.arrays[i][order])
                         for i in range(cols.arity)],
            }}
    return [encode_row(row) for row in rel.sorted_tuples()]


def _encode_column(tag: str, arr: Any) -> List[Any]:
    """One sorted column vector → a list of plain JSON scalars."""
    if tag == "bool":
        return [v == 1 for v in arr.tolist()]
    if tag == "str":
        return [_columns.decode_string(c) for c in arr.tolist()]
    return arr.tolist()  # int64 / float64 → exact Python ints / floats


def decode_relation(obj: Union[Iterable[Sequence[Any]], dict]) -> Relation:
    # Decoded rows contain only values this codec itself produced, so the
    # trusted constructors apply: no element re-validation. Checkpoint
    # decode is the reopen hot path.
    if isinstance(obj, dict):
        try:
            block = obj["c"]
            tags, cols = block["tags"], block["cols"]
        except (KeyError, TypeError) as exc:
            raise CodecError(f"malformed relation block: {obj!r}") from exc
        if len(tags) != len(cols) or not cols:
            raise CodecError(f"malformed relation block: {obj!r}")
        rows = list(zip(*cols))
        if "bool" in tags:
            # row_key tags booleans; re-key through the generic path.
            return Relation._from_rows(rows)
        # Bool-free rows are their own row_keys, and a block's rows are
        # distinct by construction (they came out of a Relation): adopt
        # the mapping without hashing every row twice.
        return Relation._from_keyed(dict(zip(rows, rows)))
    return Relation._from_rows(map(decode_row, obj))


def dump_payload(obj: Any) -> bytes:
    """A record payload (a JSON-able dict) → canonical UTF-8 bytes."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True,
                      ensure_ascii=False).encode("utf-8")


def load_payload(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable record payload: {exc}") from exc
