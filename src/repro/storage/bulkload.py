"""SQLite-backed side table for high-volume bulk ingest.

A bulk load commits as *one* WAL record and *one* engine batch no matter
how many rows it carries (that is the whole point — no per-op incremental
maintenance, no per-op log append). For very large loads, inlining the
rows into that record would make the WAL segment — and every future
recovery scan — carry the full payload twice over. The optional SQLite
format moves the rows into ``tables.sqlite`` instead: rows land in an
immutable, autoincrement-keyed *batch*, and the WAL record references the
batch id.

Immutability is what keeps replay honest: a batch id written once is never
updated or reused, so a WAL record referencing it means the same rows at
recovery time as at commit time, regardless of what later loads did to the
same relation name.

Uses only the stdlib :mod:`sqlite3`; the connection is created with
``check_same_thread=False`` because the session lock — not SQLite — is the
concurrency discipline (the server's writer thread and foreground callers
already serialize through it).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, Sequence

from repro.model.relation import Relation
from repro.storage import codec
from repro.storage.errors import StorageError

DB_NAME = "tables.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS batches (
    id    INTEGER PRIMARY KEY AUTOINCREMENT,
    name  TEXT NOT NULL,
    nrows INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    batch   INTEGER NOT NULL REFERENCES batches(id),
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS rows_by_batch ON rows(batch);
"""


class SQLiteStore:
    """Row batches in ``tables.sqlite``; one id per committed batch."""

    def __init__(self, connection: sqlite3.Connection, *,
                 writable: bool) -> None:
        self._conn = connection
        self._writable = writable
        self._closed = False

    @classmethod
    def open(cls, directory: Path) -> "SQLiteStore":
        conn = sqlite3.connect(directory / DB_NAME,
                               check_same_thread=False)
        # WAL journal keeps committed batches readable mid-transaction and
        # survives process crashes; NORMAL sync matches the "batch" fsync
        # posture of the record log.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        conn.commit()
        return cls(conn, writable=True)

    @classmethod
    def open_readonly(cls, directory: Path) -> "SQLiteStore":
        db = directory / DB_NAME
        if not db.exists():
            raise StorageError(f"{DB_NAME} missing under {directory}")
        conn = sqlite3.connect(f"file:{db}?mode=ro", uri=True,
                               check_same_thread=False)
        return cls(conn, writable=False)

    def append_batch(self, name: str, rows: Sequence[tuple]) -> int:
        """Store one immutable batch; returns its id for the WAL record."""
        if self._closed or not self._writable:
            raise StorageError("append_batch on a closed/read-only store")
        cursor = self._conn.execute(
            "INSERT INTO batches (name, nrows) VALUES (?, ?)",
            (name, len(rows)),
        )
        batch_id = cursor.lastrowid
        self._conn.executemany(
            "INSERT INTO rows (batch, payload) VALUES (?, ?)",
            ((batch_id,
              codec.dump_payload(codec.encode_row(row)).decode("utf-8"))
             for row in rows),
        )
        self._conn.commit()
        return batch_id

    def read_batch(self, batch_id: int) -> Relation:
        if self._closed:
            raise StorageError("read_batch on a closed store")
        meta = self._conn.execute(
            "SELECT nrows FROM batches WHERE id = ?", (batch_id,)
        ).fetchone()
        if meta is None:
            raise StorageError(f"no bulk batch with id {batch_id}")
        payloads = self._conn.execute(
            "SELECT payload FROM rows WHERE batch = ?", (batch_id,)
        ).fetchall()
        if len(payloads) != meta[0]:
            raise StorageError(
                f"bulk batch {batch_id}: expected {meta[0]} rows, "
                f"found {len(payloads)}"
            )
        return Relation(
            codec.decode_row(codec.load_payload(p.encode("utf-8")))
            for (p,) in payloads
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()


def coerce_rows(rows: Iterable) -> list:
    """Normalize a caller's row stream to a list of tuples (a bare scalar
    row becomes a 1-tuple, matching ``Relation``'s constructor)."""
    out = []
    for row in rows:
        if isinstance(row, tuple):
            out.append(row)
        elif isinstance(row, (list,)):
            out.append(tuple(row))
        else:
            out.append((row,))
    return out
