""":class:`StorageManager` — the durable session's one storage handle.

Owns the live WAL segment, the background checkpoint thread, the lazy
SQLite bulk store, and every counter ``Session.storage_statistics()``
reports. The session calls in under its own write lock, so nothing here
needs locking against *callers*; the only internal concurrency is the
checkpoint writer thread, which works exclusively on data captured at
rotation time (immutable relations + a copied source list).

Checkpoint rotation protocol (caller holds the session lock):

1. close the live segment (fsync per policy) — it is now frozen;
2. open the next segment; subsequent appends land there;
3. capture the COW state (every program mutator rebinds its base mapping,
   so the captured items never mutate under us);
4. hand (state, through_segment=frozen index) to a daemon thread that
   writes the checkpoint, swaps ``CURRENT``, and deletes covered segments
   and older checkpoints.

A crash at any step loses no committed record: until ``CURRENT`` swaps,
recovery uses the previous checkpoint plus all segments after it — the
frozen segment included.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple, TypeVar)

from repro.model.relation import Relation
from repro.storage import bulkload, checkpoint as ckpt, codec, wal
from repro.storage.errors import CheckpointError, StorageClosedError
from repro.storage.recovery import RecoveredState, recover_state

_T = TypeVar("_T")

#: Every live manager, so a forked child can poison inherited handles.
_live_managers: "weakref.WeakSet[StorageManager]" = weakref.WeakSet()


def _poison_managers_after_fork() -> None:
    """Neutralize every inherited StorageManager in a forked child.

    The child shares the parent's WAL file descriptors (and their file
    offsets) and inherits the checkpoint daemon thread as a dead husk —
    any write from the child would interleave bytes into the parent's
    segment, and close() would flush buffers the parent still owns. Mark
    each manager fork-poisoned: writes raise
    :class:`~repro.storage.errors.StorageClosedError` and close() becomes
    a no-op that never touches the shared descriptors. The parent's
    manager is untouched. (The parallel worker pool spawns instead of
    forking and never reaches this path.)
    """
    for manager in list(_live_managers):
        manager._poison_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX containers
    os.register_at_fork(after_in_child=_poison_managers_after_fork)


class RetryPolicy:
    """Bounded exponential backoff for transient I/O failures.

    ``attempts`` is the *total* number of tries (so ``attempts=4`` means
    one initial try plus up to three retries); delays double from
    ``base_delay`` and saturate at ``max_delay``. Only :class:`OSError`
    is retried — a full disk that stays full exhausts the budget and the
    final error propagates unchanged."""

    __slots__ = ("attempts", "base_delay", "max_delay")

    def __init__(self, attempts: int = 4, base_delay: float = 0.001,
                 max_delay: float = 0.05) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)


class StorageManager:
    """Durability engine behind ``connect(path=...)``."""

    def __init__(self, path, *, fsync: str = "batch",
                 checkpoint_every: Optional[int] = 256,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.directory = Path(path)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Auto-checkpoint after this many WAL records (None/0 = manual).
        self.checkpoint_every = checkpoint_every or 0
        self.retry = retry if retry is not None else RetryPolicy()

        self.recovered: RecoveredState = recover_state(self.directory)
        self._repair_torn_tail()

        if self.recovered.tail_segment is not None:
            live_index = self.recovered.tail_segment
        else:
            live_index = self.recovered.through_segment + 1
        self._live_index = live_index
        self._writer = wal.WALWriter(
            wal.segment_path(self.directory, live_index), fsync=fsync)

        self._next_ckpt_index = (self.recovered.checkpoint_index or 0) + 1
        # A reopen that replayed a long tail is checkpoint-hungry: count the
        # replayed records toward the threshold so the tail gets folded in.
        self._records_since_ckpt = self.recovered.replayed_records
        self._ckpt_thread: Optional[threading.Thread] = None
        self._ckpt_error: Optional[BaseException] = None
        #: A failed checkpoint leaves this set so the next rotation retries
        #: as soon as one more record lands (degraded, not dead).
        self._ckpt_retry = False

        self._store: Optional[bulkload.SQLiteStore] = None
        self._closed = False
        self._fork_poisoned = False
        self._close_lock = threading.Lock()
        _live_managers.add(self)

        self._stats = {
            "wal_appends": 0,
            "wal_bytes": 0,
            "checkpoints": 0,
            "checkpoint_errors": 0,
            "recoveries": 1 if self.recovered.found_existing else 0,
            "replayed_records": self.recovered.replayed_records,
            "bulk_rows": 0,
            "retries": 0,
        }

    # -- recovery repair ---------------------------------------------------

    def _repair_torn_tail(self) -> None:
        """Truncate the final segment's torn bytes so new appends follow
        the last committed record instead of burying it behind garbage."""
        rec = self.recovered
        if rec.tail_segment is None or rec.torn_bytes == 0:
            return
        path = wal.segment_path(self.directory, rec.tail_segment)
        with open(path, "r+b") as f:
            f.truncate(rec.tail_good_bytes)
            f.flush()
            os.fsync(f.fileno())

    # -- logging -----------------------------------------------------------

    def log_load(self, source: str) -> None:
        self._append({"op": "load", "source": source})

    def log_batch(
        self, updates: Mapping[str, Tuple[Relation, Relation]]
    ) -> None:
        """One record per committed batch: ``{name: (plus, minus)}``."""
        if not updates:
            return
        self._append({
            "op": "batch",
            "updates": {
                name: [codec.encode_relation(plus),
                       codec.encode_relation(minus)]
                for name, (plus, minus) in updates.items()
            },
        })

    def log_bulk(self, name: str, rows: List[tuple], *,
                 use_store: bool = False) -> None:
        """One record per bulk load; rows inline or via a SQLite batch."""
        if use_store:
            batch_id = self.store.append_batch(name, rows)
            self._append({"op": "bulk", "name": name, "batch": batch_id})
        else:
            self._append({"op": "bulk", "name": name,
                          "rows": [codec.encode_row(r) for r in rows]})
        self._stats["bulk_rows"] += len(rows)

    def _retrying(self, what: str, fn: Callable[[], _T]) -> _T:
        """Run ``fn`` under the retry policy: transient :class:`OSError`
        failures back off and retry; the last attempt's error propagates.
        Every retried attempt bumps the ``retries`` counter."""
        policy = self.retry
        attempt = 1
        while True:
            try:
                return fn()
            except OSError:
                if attempt >= policy.attempts:
                    raise
                self._stats["retries"] += 1
                time.sleep(policy.delay(attempt))
                attempt += 1

    def _append(self, payload: Dict[str, Any]) -> None:
        if self._closed:
            raise StorageClosedError(
                "write on a closed durable session — reopen with "
                "connect(path=...)"
            )
        # Safe to retry: a failed append truncates the segment back to its
        # committed prefix (WALWriter._repair), so each attempt starts clean.
        self._stats["wal_bytes"] += self._retrying(
            "wal append", lambda: self._writer.append(payload))
        self._stats["wal_appends"] += 1
        self._records_since_ckpt += 1

    # -- checkpoints -------------------------------------------------------

    @property
    def checkpoint_due(self) -> bool:
        if self._checkpoint_in_flight():
            return False
        if self._ckpt_retry and self._records_since_ckpt >= 1:
            # Degraded: the last checkpoint failed; retry at the first
            # opportunity instead of waiting out a full threshold.
            return True
        return (self.checkpoint_every > 0
                and self._records_since_ckpt >= self.checkpoint_every)

    def _checkpoint_in_flight(self) -> bool:
        return self._ckpt_thread is not None and self._ckpt_thread.is_alive()

    def begin_checkpoint(self, sources: Iterable[str],
                         base: Mapping[str, Relation], *,
                         wait: bool = False) -> bool:
        """Rotate the WAL and snapshot (sources, base) in the background.

        Caller holds the session lock; returns False when a checkpoint is
        already in flight (and ``wait`` is False)."""
        if self._closed:
            raise StorageClosedError("checkpoint on a closed session")
        if self._checkpoint_in_flight():
            if not wait:
                return False
            self.wait_for_checkpoint()
        elif wait:
            # Only the explicit (wait=True) path surfaces an older failure
            # up front; the auto-rotation path is the *retry* of that
            # failure and must not throw into an unrelated write call.
            self._raise_pending_checkpoint_error()

        try:
            # Freezing the old segment can hit a (transient or injected)
            # fsync failure; its records are already flushed to the OS, so
            # degrade — count it against the checkpoint, keep rotating.
            self._writer.close()
        except OSError as exc:
            self._note_checkpoint_failure(exc)
        through = self._live_index
        self._live_index += 1
        self._writer = self._retrying(
            "wal rotate",
            lambda: wal.WALWriter(
                wal.segment_path(self.directory, self._live_index),
                fsync=self.fsync))
        self._records_since_ckpt = 0

        index = self._next_ckpt_index
        self._next_ckpt_index += 1
        captured_sources = list(sources)
        captured_base = list(base.items())
        self._ckpt_thread = threading.Thread(
            target=self._write_checkpoint,
            args=(index, through, captured_sources, captured_base),
            name=f"repro-checkpoint-{index}",
            daemon=True,
        )
        self._ckpt_thread.start()
        if wait:
            self.wait_for_checkpoint()
        return True

    def _write_checkpoint(self, index: int, through: int,
                          sources: List[str],
                          base: List[Tuple[str, Relation]]) -> None:
        try:
            do_fsync = self.fsync != "never"
            path = self._retrying(
                "checkpoint write",
                lambda: ckpt.write_checkpoint(
                    self.directory, index, through_segment=through,
                    sources=sources, base=base, do_fsync=do_fsync))
            self._retrying(
                "checkpoint publish",
                lambda: ckpt.set_current(
                    self.directory, path.name, do_fsync=do_fsync))
            for segment in wal.list_segments(self.directory):
                if wal.segment_index(segment) <= through:
                    segment.unlink(missing_ok=True)
            for old in ckpt.list_checkpoints(self.directory):
                if ckpt.checkpoint_index(old) < index:
                    old.unlink(missing_ok=True)
            self._stats["checkpoints"] += 1
            # Success supersedes any earlier failure: the durable state is
            # now checkpointed, so nothing remains to warn about at close.
            self._ckpt_retry = False
            self._ckpt_error = None
        except BaseException as exc:  # surfaced via stats and on close/sync
            self._note_checkpoint_failure(exc)

    def _note_checkpoint_failure(self, exc: BaseException) -> None:
        """Record a checkpoint failure without interrupting the write path:
        the WAL keeps accepting records (they still recover by replay), the
        failure shows in ``statistics()["checkpoint_errors"]`` immediately,
        close()/sync() re-raise it, and the next rotation retries."""
        self._ckpt_error = exc
        self._ckpt_retry = True
        self._stats["checkpoint_errors"] += 1

    def wait_for_checkpoint(self) -> None:
        if self._ckpt_thread is not None:
            self._ckpt_thread.join()
            self._ckpt_thread = None
        self._raise_pending_checkpoint_error()

    def _raise_pending_checkpoint_error(self) -> None:
        if self._ckpt_error is not None:
            exc, self._ckpt_error = self._ckpt_error, None
            raise CheckpointError(
                f"background checkpoint failed: {exc}") from exc

    # -- bulk store --------------------------------------------------------

    @property
    def store(self) -> bulkload.SQLiteStore:
        if self._store is None:
            self._store = bulkload.SQLiteStore.open(self.directory)
        return self._store

    # -- lifecycle ---------------------------------------------------------

    def sync(self) -> None:
        """Durability barrier: every logged record is fsync'd (policy
        permitting) when this returns. Re-raises a pending background
        checkpoint failure — the barrier is where degraded state must
        become visible to callers that asked for durability."""
        if not self._closed:
            self._retrying("wal sync", self._writer.sync)
            self._raise_pending_checkpoint_error()

    def _poison_after_fork(self) -> None:
        """Forked-child guard (see :func:`_poison_managers_after_fork`):
        mark closed without touching the descriptors the parent owns."""
        self._fork_poisoned = True
        self._closed = True
        self._ckpt_thread = None
        # The close lock may have been captured mid-acquire; replace it so
        # the child's (no-op) close can never deadlock.
        self._close_lock = threading.Lock()

    def close(self) -> None:
        """Idempotent and safe under concurrent callers: exactly one
        caller tears the manager down; the writer and bulk store are
        always closed *before* any deferred checkpoint failure is
        re-raised, so a degraded session still releases its resources."""
        if self._fork_poisoned:
            # Forked child: the descriptors belong to the parent; flushing
            # or closing them here would corrupt the parent's WAL.
            return
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            thread = self._ckpt_thread
            self._ckpt_thread = None
        if thread is not None and thread.is_alive():
            thread.join()
        writer_error: Optional[BaseException] = None
        try:
            self._writer.close()
        except OSError as exc:
            writer_error = exc
        if self._store is not None:
            self._store.close()
        self._raise_pending_checkpoint_error()
        if writer_error is not None:
            raise writer_error

    @property
    def closed(self) -> bool:
        return self._closed

    def statistics(self) -> Dict[str, int]:
        return dict(self._stats)
