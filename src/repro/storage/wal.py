"""The write-ahead log: append-only segments of length+CRC-framed records.

File format (one segment)::

    offset 0   8-byte header: b"RWAL" + version byte + 3 reserved bytes
    then, repeated:
        4 bytes  little-endian payload length
        4 bytes  little-endian CRC-32 of the payload
        N bytes  payload (canonical JSON, repro.storage.codec)

The frame is what makes crash recovery honest: a record is *committed*
exactly when all of header+payload reached the file, and any torn suffix
(short header, short payload, CRC mismatch, undecodable JSON) is
detectable without trusting the data. :func:`scan_segment` stops at the
first bad frame and reports how many good bytes precede it; the recovery
layer decides whether that tail is a tolerable crash artifact (final
segment) or real corruption (anything earlier).

Writers append under the session's write lock — one :class:`WALWriter` per
live segment, fsync'd per the session's policy knob. A record is a plain
dict; see :mod:`repro.storage.manager` for the record vocabulary
(``load`` / ``batch`` / ``bulk``).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from repro.storage import faults
from repro.storage.codec import dump_payload, load_payload
from repro.storage.errors import CodecError, StorageClosedError, StorageError

WAL_MAGIC = b"RWAL\x01\x00\x00\x00"
HEADER_LEN = len(WAL_MAGIC)

_FRAME = struct.Struct("<II")  # payload length, CRC-32

#: Hard sanity cap on a single record (a length field beyond this is
#: treated as garbage, not as an instruction to allocate gigabytes).
MAX_RECORD_BYTES = 1 << 30

SEGMENT_PATTERN = "wal-{:08d}.log"


def segment_path(directory: Path, index: int) -> Path:
    return directory / SEGMENT_PATTERN.format(index)


def segment_index(path: Path) -> int:
    return int(path.name[len("wal-"):-len(".log")])


def list_segments(directory: Path) -> List[Path]:
    """All WAL segment files in the directory, in index order."""
    return sorted(directory.glob("wal-*.log"), key=segment_index)


def frame_record(payload: bytes) -> bytes:
    """One framed record: header + payload, ready to append."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class SegmentScan:
    """The readable prefix of one segment."""

    #: Decoded record payloads, in append order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Offset one past the last fully-valid record (file-truncation target
    #: when repairing a torn tail).
    good_bytes: int = HEADER_LEN
    #: True when trailing bytes past ``good_bytes`` had to be dropped.
    torn: bool = False
    #: How many bytes the torn tail holds (0 when not torn).
    torn_bytes: int = 0


def scan_segment(path: Path) -> SegmentScan:
    """Read every committed record of one segment, stopping at the first
    torn or corrupt frame.

    A file too short to hold the 8-byte segment header is treated as a
    torn creation (zero records); a *wrong* header on a full-length file
    is a format error — that file was never a WAL segment."""
    data = path.read_bytes()
    scan = SegmentScan()
    if len(data) < HEADER_LEN:
        scan.good_bytes = 0
        scan.torn = bool(data)
        scan.torn_bytes = len(data)
        return scan
    if data[:HEADER_LEN] != WAL_MAGIC:
        raise StorageError(f"{path.name}: not a WAL segment (bad magic)")
    offset = HEADER_LEN
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            break  # torn header
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if length > MAX_RECORD_BYTES or start + length > total:
            break  # garbage length or torn payload
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            break  # corrupt payload
        try:
            record = load_payload(payload)
        except CodecError:
            break  # CRC of garbage that happened to match? still torn
        scan.records.append(record)
        offset = start + length
        scan.good_bytes = offset
    if offset != total or scan.good_bytes != total:
        scan.torn = True
        scan.torn_bytes = total - scan.good_bytes
    return scan


class WALWriter:
    """Appender for one live segment.

    ``fsync`` policy: ``"always"`` fsyncs after every append (maximum
    durability, one disk flush per committed batch), ``"batch"`` flushes
    to the OS per append and fsyncs only at explicit :meth:`sync` barriers
    (checkpoints, ``QueryServer.flush()``, close — survives process death,
    not power loss), ``"never"`` leaves even the barrier fsyncs out (fastest;
    for bulk jobs that checkpoint at the end)."""

    FSYNC_POLICIES = ("always", "batch", "never")

    def __init__(self, path: Path, fsync: str = "batch") -> None:
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of "
                + ", ".join(repr(p) for p in self.FSYNC_POLICIES)
            )
        self.path = path
        self.fsync = fsync
        self._closed = False
        self._broken = False
        faults.before_open(path)
        fresh = not path.exists() or path.stat().st_size == 0
        self._file = open(path, "ab")
        if fresh:
            self._file.write(WAL_MAGIC)
            self._file.flush()
        self.bytes_written = self._file.tell()

    def append(self, payload_obj: Dict[str, Any]) -> int:
        """Frame and append one record; returns the bytes written.

        All-or-nothing at the segment level: on any failure (injected or
        real — ENOSPC, EIO, a torn partial write) the segment is truncated
        back to its last committed record before the error propagates, so
        the file never holds a half-frame that a later append would bury.
        If even the truncate fails the writer marks itself broken and
        refuses further appends."""
        if self._closed:
            raise StorageClosedError("append on a closed WAL segment")
        if self._broken:
            raise StorageError(
                f"{self.path.name}: WAL segment is broken (a failed append "
                "could not be rolled back); rotate or reopen the session")
        record = frame_record(dump_payload(payload_obj))
        try:
            partial = faults.before_write(self.path, len(record))
            if partial is not None:
                # Torn write: persist a strict prefix, then fail.
                self._file.write(record[:len(record) // 2])
                self._file.flush()
                faults.raise_partial(partial, self.path)
            self._file.write(record)
            # Flush to the OS unconditionally: a committed record must
            # survive *process* death under every policy; only the
            # disk-cache flush (power-loss durability) is policy-gated.
            self._file.flush()
            if self.fsync == "always":
                faults.before_fsync(self.path)
                os.fsync(self._file.fileno())
        except OSError:
            self._repair()
            raise
        self.bytes_written += len(record)
        return len(record)

    def _repair(self) -> None:
        """Roll a failed append back to the last committed record.

        The file is opened ``"ab"``, so every write lands at EOF and
        ``bytes_written`` is exactly the committed prefix — truncating to
        it discards whatever the failed append managed to persist."""
        try:
            self._file.flush()
        except OSError:
            pass
        try:
            self._file.truncate(self.bytes_written)
        except OSError:
            self._broken = True

    def sync(self) -> None:
        """Durability barrier: flush and (policy permitting) fsync."""
        if self._closed:
            return
        self._file.flush()
        if self.fsync != "never":
            faults.before_fsync(self.path)
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
            if self.fsync != "never":
                faults.before_fsync(self.path)
                os.fsync(self._file.fileno())
        finally:
            self._file.close()
