"""Storage-layer error types."""

from __future__ import annotations


class StorageError(RuntimeError):
    """Base class for durable-storage failures."""


class StorageClosedError(StorageError):
    """Raised when a mutation reaches a closed storage manager — a durable
    session that has been :meth:`~repro.api.Session.close`\\ d refuses
    further writes instead of silently diverging from its log."""


class WALCorruptionError(StorageError):
    """Raised when a WAL segment is damaged somewhere other than its torn
    tail. A torn *final* record (partial header, short payload, bad CRC at
    the very end of the last segment) is the expected signature of a crash
    mid-append and is recovered around; a bad frame *followed by* more
    segments means the log was tampered with or the disk lost committed
    writes, and recovery refuses to guess."""


class CheckpointError(StorageError):
    """Raised when a checkpoint file is structurally invalid. Recovery
    falls back to the next-older checkpoint (plus a longer WAL replay)
    before surfacing this."""


class CodecError(StorageError):
    """Raised when a value outside the Rel data model reaches the
    serializer, or a stored payload does not decode to one."""
