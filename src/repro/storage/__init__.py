"""Durable storage: write-ahead log, checkpoints, recovery, bulk loading.

Everything the engine computes is reconstructible from two things — the
rule *sources* a session has loaded and the contents of its *base*
relations. This package persists exactly that logical state:

- :mod:`repro.storage.wal` — an append-only, length+CRC-framed write-ahead
  log. One record per committed batch (the PR-5 write coalescing carries
  over: a server burst that commits as one ``apply_batch`` is one record);
- :mod:`repro.storage.checkpoint` — atomic snapshot checkpoints of the
  full (sources, base extents) state, written from the copy-on-write
  capture of :meth:`repro.engine.program.RelProgram.durable_state`, after
  which the covered WAL segments are deleted;
- :mod:`repro.storage.recovery` — crash recovery: load the latest valid
  checkpoint, replay the WAL tail, tolerate torn final records;
- :mod:`repro.storage.bulkload` — the SQLite-backed side table for
  high-throughput bulk ingest (rows land in ``tables.sqlite`` batches the
  WAL references by id instead of inlining);
- :mod:`repro.storage.manager` — :class:`StorageManager`, the object a
  durable :class:`repro.api.Session` owns: fsync policy, segment rotation,
  background checkpoints, bounded-backoff retry of transient I/O failures
  (:class:`RetryPolicy`), and the ``storage_statistics()`` counters;
- :mod:`repro.storage.faults` — the fault-injection seam: scripted
  open/write/fsync/rename failures (ENOSPC, EIO, torn writes) that the
  crash-recovery and degradation tests drive through every I/O site.

The user-facing surface is ``repro.connect(path=...)`` — see
:mod:`repro.api`.
"""

from repro.storage.errors import (CheckpointError, StorageClosedError,
                                  StorageError, WALCorruptionError)
from repro.storage.faults import FaultInjector, injected
from repro.storage.manager import RetryPolicy, StorageManager
from repro.storage.recovery import RecoveredState, recover_state

__all__ = [
    "CheckpointError",
    "FaultInjector",
    "RecoveredState",
    "RetryPolicy",
    "StorageClosedError",
    "StorageError",
    "StorageManager",
    "WALCorruptionError",
    "injected",
    "recover_state",
]
