"""Fault injection for the storage layer — a testing seam, zero-cost when off.

The durability claims in this package (committed-prefix recovery, WAL
repair, checkpoint degradation) are only as good as their tests, and real
disks fail in ways ``tmpfs`` never does: ``ENOSPC`` mid-append, ``EIO`` on
fsync, a rename that never lands, a write torn halfway through. This
module lets tests script those failures deterministically.

Every I/O site in :mod:`repro.storage.wal`, :mod:`~repro.storage.checkpoint`
and :mod:`~repro.storage.manager` consults a module-global injector via
four hooks — :func:`before_open`, :func:`before_write`,
:func:`before_fsync`, :func:`before_rename` — before touching the OS.
With no injector installed (production), each hook is a single global
load + ``is None`` test.

Usage::

    from repro.storage import faults

    inj = faults.FaultInjector()
    inj.fail("fsync", err=errno.EIO, after=2)       # 3rd fsync dies
    inj.fail("write", err=errno.ENOSPC, partial=True)  # torn first write
    with faults.injected(inj):
        ...  # exercise a StorageManager

Each :meth:`FaultInjector.fail` spec arms one failure: the matching
operation raises ``OSError(err)`` after ``after`` successful matches, for
``times`` occurrences (then the spec is spent). ``partial=True`` on a
write spec asks the *site* to write a prefix of the buffer first — a torn
write, not a clean refusal. ``path`` restricts the spec to file names
containing the substring.
"""

from __future__ import annotations

import errno as _errno
import os
import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional


class FaultSpec:
    """One armed failure. Mutable countdown state lives here; the owning
    injector's lock guards it."""

    __slots__ = ("op", "err", "after", "times", "partial", "path", "fired")

    def __init__(self, op: str, err: int, after: int, times: int,
                 partial: bool, path: Optional[str]) -> None:
        self.op = op
        self.err = err
        self.after = after
        self.times = times
        self.partial = partial
        self.path = path
        #: How many times this spec has raised so far.
        self.fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultSpec(op={self.op!r}, err={self.err}, "
                f"after={self.after}, times={self.times}, "
                f"partial={self.partial}, path={self.path!r}, "
                f"fired={self.fired})")


#: Operations a spec may target.
FAULT_OPS = ("open", "write", "fsync", "rename")


class FaultInjector:
    """A scripted set of storage failures, matched in arming order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: List[FaultSpec] = []
        #: Total faults raised through this injector.
        self.fired = 0

    def fail(self, op: str, *, err: int = _errno.EIO, after: int = 0,
             times: int = 1, partial: bool = False,
             path: Optional[str] = None) -> "FaultInjector":
        """Arm one failure; returns self for chaining.

        ``op``      one of :data:`FAULT_OPS`;
        ``err``     the errno the ``OSError`` carries;
        ``after``   matching calls to let through before failing;
        ``times``   failures before the spec is spent;
        ``partial`` (write only) tear the write: the site persists a
                    prefix of the buffer, then the error is raised;
        ``path``    only match files whose name contains this substring.
        """
        if op not in FAULT_OPS:
            raise ValueError(
                f"unknown fault op {op!r}; expected one of "
                + ", ".join(repr(o) for o in FAULT_OPS))
        if partial and op != "write":
            raise ValueError("partial=True only applies to 'write' faults")
        if after < 0 or times < 1:
            raise ValueError("after must be >= 0 and times >= 1")
        with self._lock:
            self._specs.append(
                FaultSpec(op, err, after, times, partial, path))
        return self

    def _match(self, op: str, path: os.PathLike) -> Optional[FaultSpec]:
        """Consume one matching call; returns the spec if it should fire.

        ``path`` filters match the file's *base name* only — a spec
        targets files, and matching the directory would make it fire on
        everything in a suggestively-named tmp dir."""
        name = os.path.basename(os.fspath(path))
        with self._lock:
            for spec in self._specs:
                if spec.op != op:
                    continue
                if spec.path is not None and spec.path not in name:
                    continue
                if spec.after > 0:
                    spec.after -= 1
                    return None
                if spec.fired >= spec.times:
                    continue
                spec.fired += 1
                self.fired += 1
                return spec
            return None

    def _raise(self, spec: FaultSpec, op: str, path: os.PathLike) -> None:
        raise OSError(
            spec.err,
            f"injected {op} fault: {os.strerror(spec.err)}",
            os.fspath(path))


_injector: Optional[FaultInjector] = None
_install_lock = threading.Lock()


def install(injector: Optional[FaultInjector]) -> None:
    """Install (or, with ``None``, clear) the process-global injector."""
    global _injector
    with _install_lock:
        _injector = injector


def clear() -> None:
    install(None)


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scope an injector: installed on entry, cleared on exit."""
    install(injector)
    try:
        yield injector
    finally:
        clear()


# -- hooks (called by the storage I/O sites) -------------------------------

def before_open(path: os.PathLike) -> None:
    inj = _injector
    if inj is None:
        return
    spec = inj._match("open", path)
    if spec is not None:
        inj._raise(spec, "open", path)


def before_write(path: os.PathLike, nbytes: int) -> Optional[FaultSpec]:
    """Raises for a full write fault; for a *partial* fault returns the
    spec so the site can persist a prefix first, then raise via
    :func:`raise_partial`. Returns None when no fault applies."""
    inj = _injector
    if inj is None:
        return None
    spec = inj._match("write", path)
    if spec is None:
        return None
    if spec.partial and nbytes > 1:
        return spec
    inj._raise(spec, "write", path)
    return None  # unreachable


def raise_partial(spec: FaultSpec, path: os.PathLike) -> None:
    raise OSError(
        spec.err,
        f"injected partial-write fault: {os.strerror(spec.err)}",
        os.fspath(path))


def before_fsync(path: os.PathLike) -> None:
    inj = _injector
    if inj is None:
        return
    spec = inj._match("fsync", path)
    if spec is not None:
        inj._raise(spec, "fsync", path)


def before_rename(path: os.PathLike) -> None:
    inj = _injector
    if inj is None:
        return
    spec = inj._match("rename", path)
    if spec is not None:
        inj._raise(spec, "rename", path)
