"""Snapshot checkpoints: the full (sources, base extents) state, atomically.

A checkpoint file is the durable twin of
:meth:`repro.engine.program.RelProgram.durable_state`: the rule sources a
session has loaded (in load order — stratification and name resolution are
re-derived, not stored) and every base relation's extent, serialized with
the stable codec so equal states produce identical bytes.

File format::

    8-byte header  b"RCKP" + version byte + 3 reserved bytes
    4 bytes        little-endian payload length
    4 bytes        little-endian CRC-32 of the payload
    N bytes        payload (canonical JSON)

with payload keys ``through_segment`` (every WAL segment with an index ≤
this is covered and deletable), ``sources``, and ``base``.

Atomicity protocol (crash-safe at every step):

1. write ``checkpoint-<n>.ckpt.tmp``, flush, fsync;
2. rename to ``checkpoint-<n>.ckpt`` (atomic on POSIX), fsync the
   directory;
3. rewrite ``CURRENT`` via the same tmp+rename dance;
4. only then delete covered WAL segments and older checkpoints.

A crash before (2) leaves the previous checkpoint + full WAL; between (2)
and (4) leaves two valid checkpoints and an over-long WAL — recovery takes
the newest *valid* one (``CURRENT`` first, then a directory scan), so
every interleaving recovers the same committed state.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.model.relation import Relation
from repro.storage import codec, faults
from repro.storage.errors import CheckpointError, CodecError

CKPT_MAGIC = b"RCKP\x01\x00\x00\x00"
_FRAME = struct.Struct("<II")

CKPT_PATTERN = "checkpoint-{:08d}.ckpt"
CURRENT_NAME = "CURRENT"


def checkpoint_path(directory: Path, index: int) -> Path:
    return directory / CKPT_PATTERN.format(index)


def checkpoint_index(path: Path) -> int:
    return int(path.name[len("checkpoint-"):-len(".ckpt")])


def list_checkpoints(directory: Path) -> List[Path]:
    """Checkpoint files in the directory, oldest first."""
    return sorted(directory.glob("checkpoint-*.ckpt"), key=checkpoint_index)


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes, *, do_fsync: bool = True) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    faults.before_open(tmp)
    try:
        with open(tmp, "wb") as f:
            partial = faults.before_write(tmp, len(data))
            if partial is not None:
                f.write(data[:len(data) // 2])
                f.flush()
                faults.raise_partial(partial, tmp)
            f.write(data)
            f.flush()
            if do_fsync:
                faults.before_fsync(tmp)
                os.fsync(f.fileno())
        faults.before_rename(path)
        os.replace(tmp, path)
    except OSError:
        # Never leave a half-written tmp file for recovery scans (or a
        # later attempt's fresh open) to trip over.
        tmp.unlink(missing_ok=True)
        raise
    if do_fsync:
        _fsync_dir(path.parent)


def write_checkpoint(directory: Path, index: int, *, through_segment: int,
                     sources: Iterable[str],
                     base: Iterable[Tuple[str, Relation]],
                     do_fsync: bool = True) -> Path:
    """Serialize one checkpoint atomically; returns its final path.

    ``base`` is iterated here (possibly in a background thread): the
    relations are immutable and the mapping was captured copy-on-write, so
    this never races with writers."""
    payload = codec.dump_payload({
        "through_segment": through_segment,
        "sources": list(sources),
        "base": {name: codec.encode_relation(rel)
                 for name, rel in sorted(base)},
    })
    data = CKPT_MAGIC + _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
    path = checkpoint_path(directory, index)
    _atomic_write(path, data, do_fsync=do_fsync)
    return path


def read_checkpoint(path: Path) -> Dict[str, Any]:
    """Load and validate one checkpoint; raises :class:`CheckpointError`
    on any structural damage (the caller falls back to an older one)."""
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"{path.name}: unreadable ({exc})") from exc
    header = len(CKPT_MAGIC)
    if len(data) < header + _FRAME.size or data[:header] != CKPT_MAGIC:
        raise CheckpointError(f"{path.name}: bad header")
    length, crc = _FRAME.unpack_from(data, header)
    payload = data[header + _FRAME.size:]
    if len(payload) != length or zlib.crc32(payload) != crc:
        raise CheckpointError(f"{path.name}: torn or corrupt payload")
    try:
        state = codec.load_payload(payload)
    except CodecError as exc:
        raise CheckpointError(f"{path.name}: {exc}") from exc
    if not isinstance(state, dict) or \
            not {"through_segment", "sources", "base"} <= set(state):
        raise CheckpointError(f"{path.name}: missing checkpoint keys")
    return state


def decode_base(state: Dict[str, Any]) -> Dict[str, Relation]:
    return {name: codec.decode_relation(rows)
            for name, rows in state["base"].items()}


def set_current(directory: Path, checkpoint_name: str, *,
                do_fsync: bool = True) -> None:
    """Point ``CURRENT`` at a checkpoint file (atomic replace)."""
    _atomic_write(directory / CURRENT_NAME,
                  (checkpoint_name + "\n").encode("utf-8"),
                  do_fsync=do_fsync)


def read_current(directory: Path) -> Optional[str]:
    try:
        name = (directory / CURRENT_NAME).read_text().strip()
    except OSError:
        return None
    return name or None
