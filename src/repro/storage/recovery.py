"""Crash recovery: newest valid checkpoint + WAL-tail replay.

:func:`recover_state` is deliberately a *pure* function of a storage
directory — no :class:`~repro.api.Session`, no engine, no mutation of the
files it reads. It returns the committed logical state (sources + base
extents) plus enough bookkeeping for two very different callers:

- ``connect(path=...)`` feeds the result into a fresh session and lets the
  :class:`~repro.storage.manager.StorageManager` repair the torn tail
  before appending;
- the crash-recovery test harness calls it thousands of times (every
  truncation offset of every seeded script) and compares ``base`` against
  a plain-dict oracle, which only works because nothing here needs a live
  engine.

Damage policy: a torn tail on the *final* segment is the expected
signature of a crash mid-append and is silently dropped (that record never
committed). A bad frame on any earlier segment — or a bulk record whose
SQLite batch is missing — means committed data was lost, and recovery
raises :class:`~repro.storage.errors.WALCorruptionError` rather than
resurrect a prefix that was never the latest committed state. A corrupt
checkpoint falls back to the next-older one (longer replay, same state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.model.relation import EMPTY, Relation
from repro.storage import bulkload, checkpoint as ckpt, codec, wal
from repro.storage.errors import CheckpointError, WALCorruptionError


@dataclass
class RecoveredState:
    """Everything :func:`recover_state` learned from a storage directory."""

    #: Rule/source texts in original load order (replayed via ``load``).
    sources: List[str] = field(default_factory=list)
    #: Base relation extents at the committed tip.
    base: Dict[str, Relation] = field(default_factory=dict)

    #: True when the directory held prior storage files (a reopen, not a
    #: fresh database).
    found_existing: bool = False
    #: Index of the checkpoint the state was seeded from (None = no valid
    #: checkpoint; replay started from empty).
    checkpoint_index: Optional[int] = None
    #: Highest WAL segment index covered by that checkpoint (0 = none).
    through_segment: int = 0

    #: WAL records applied on top of the checkpoint.
    replayed_records: int = 0
    #: Bytes dropped from the final segment's torn tail (0 = clean).
    torn_bytes: int = 0
    #: Index of the last existing segment (None = no segments on disk);
    #: the manager truncates it to ``tail_good_bytes`` before appending.
    tail_segment: Optional[int] = None
    tail_good_bytes: int = 0


def _load_checkpoint(directory: Path) -> tuple:
    """(state dict or None, checkpoint index or None).

    ``CURRENT`` is a hint, not an authority: whatever it points at is
    validated like any other candidate, and the newest checkpoint that
    actually passes its CRC wins."""
    candidates: List[Path] = []
    current = ckpt.read_current(directory)
    if current is not None and (directory / current).exists():
        candidates.append(directory / current)
    for path in reversed(ckpt.list_checkpoints(directory)):
        if path not in candidates:
            candidates.append(path)
    candidates.sort(key=ckpt.checkpoint_index, reverse=True)
    last_error: Optional[CheckpointError] = None
    for path in candidates:
        try:
            return ckpt.read_checkpoint(path), ckpt.checkpoint_index(path)
        except CheckpointError as exc:
            last_error = exc
    if last_error is not None:
        raise CheckpointError(
            f"no valid checkpoint in {directory} (last: {last_error})"
        ) from last_error
    return None, None


def _apply_record(record: Dict[str, Any], state: RecoveredState,
                  store: Optional[bulkload.SQLiteStore],
                  segment_name: str) -> None:
    op = record.get("op")
    if op == "load":
        state.sources.append(record["source"])
    elif op == "batch":
        for name, (plus, minus) in record["updates"].items():
            old = state.base.get(name, EMPTY)
            state.base[name] = (
                old.difference(codec.decode_relation(minus))
                   .union(codec.decode_relation(plus))
            )
    elif op == "bulk":
        name = record["name"]
        if "rows" in record:
            rows = codec.decode_relation(record["rows"])
        else:
            if store is None:
                raise WALCorruptionError(
                    f"{segment_name}: bulk record references batch "
                    f"{record['batch']} but tables.sqlite is missing"
                )
            rows = store.read_batch(record["batch"])
        state.base[name] = state.base.get(name, EMPTY).union(rows)
    else:
        raise WALCorruptionError(
            f"{segment_name}: unknown WAL record op {op!r}"
        )


def recover_state(path: Path) -> RecoveredState:
    """Reconstruct the committed logical state under ``path``.

    Read-only: repairing the torn tail (file truncation) is the
    manager's job, so the harness can probe the same directory
    repeatedly."""
    directory = Path(path)
    state = RecoveredState()
    segments = wal.list_segments(directory)
    checkpoints = ckpt.list_checkpoints(directory)
    state.found_existing = bool(
        segments or checkpoints or (directory / ckpt.CURRENT_NAME).exists()
    )
    if not state.found_existing:
        return state

    ckpt_state, ckpt_index = _load_checkpoint(directory)
    if ckpt_state is not None:
        state.checkpoint_index = ckpt_index
        state.through_segment = ckpt_state["through_segment"]
        state.sources = list(ckpt_state["sources"])
        state.base = ckpt.decode_base(ckpt_state)

    # Segments at or below through_segment are covered by the checkpoint;
    # they linger only when a crash hit between CURRENT-swap and cleanup.
    replay = [s for s in segments
              if wal.segment_index(s) > state.through_segment]

    store: Optional[bulkload.SQLiteStore] = None
    try:
        for pos, segment in enumerate(replay):
            scan = wal.scan_segment(segment)
            is_final = pos == len(replay) - 1
            if scan.torn and not is_final:
                raise WALCorruptionError(
                    f"{segment.name}: damaged frame mid-log "
                    f"({scan.torn_bytes} bad bytes) with later segments "
                    f"present — refusing to drop committed records"
                )
            for record in scan.records:
                if store is None and record.get("op") == "bulk" \
                        and "rows" not in record:
                    store = bulkload.SQLiteStore.open_readonly(directory)
                _apply_record(record, state, store, segment.name)
            state.replayed_records += len(scan.records)
            if is_final:
                state.torn_bytes = scan.torn_bytes
                state.tail_segment = wal.segment_index(segment)
                state.tail_good_bytes = scan.good_bytes
    finally:
        if store is not None:
            store.close()
    return state
