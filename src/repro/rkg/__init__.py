"""Relational Knowledge Graphs (Section 6 of the paper).

An RKG combines (1) the relational data model, (2) graph normal form, and
(3) Rel as the language for derived concepts and application semantics.
This package provides:

- :class:`KnowledgeGraph` — concepts (entity types), attributes, and
  relationships stored in GNF over a :class:`repro.db.Database`, with the
  unique-identifier property enforced via the entity registry;
- derived concepts and relationships *defined in Rel*, evaluated by the
  engine (the "semantic layer" of Section 6);
- a rule-based reasoner API: ask/derive/explain over the graph.
"""

from repro.rkg.graph import Concept, KnowledgeGraph, Relationship

__all__ = ["Concept", "KnowledgeGraph", "Relationship"]
