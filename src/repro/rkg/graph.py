"""The knowledge-graph API: GNF storage + Rel-defined semantics.

A :class:`KnowledgeGraph` models a domain as *concepts* (entity types) and
*relationships*, stored in graph normal form:

- each concept ``C`` has a unary relation ``C(entity)``;
- each attribute ``a`` of ``C`` has a binary relation ``C_a(entity, value)``
  (names follow the paper's ``ProductPrice`` convention: concept + attribute);
- each relationship has a relation over participating entities, plus at
  most one trailing value column.

Derived concepts and relationships are added as Rel source (the semantic
layer); queries are Rel expressions evaluated over base + derived relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api import Session
from repro.db.database import Database
from repro.engine.program import EngineOptions, RelProgram
from repro.model.relation import EMPTY, Relation
from repro.model.values import Entity


@dataclass(frozen=True)
class Concept:
    """An entity type in the knowledge graph."""

    name: str
    attributes: Tuple[str, ...] = ()

    def attribute_relation(self, attribute: str) -> str:
        return f"{self.name}{attribute[0].upper()}{attribute[1:]}"


@dataclass(frozen=True)
class Relationship:
    """A relationship among concepts, with an optional value column."""

    name: str
    participants: Tuple[str, ...]
    value_column: Optional[str] = None


class KnowledgeGraph:
    """A relational knowledge graph: GNF data + Rel semantics.

    >>> kg = KnowledgeGraph()
    >>> _ = kg.concept("Person", ["name"])
    >>> _ = kg.relationship("Knows", ["Person", "Person"])
    >>> alice = kg.add_entity("Person", "alice", name="Alice")
    >>> bob = kg.add_entity("Person", "bob", name="Bob")
    >>> kg.relate("Knows", alice, bob)
    >>> kg.define("def FriendOfFriend(x, z) : exists((y) | Knows(x,y) and Knows(y,z))")
    >>> len(kg.query("FriendOfFriend"))
    0
    """

    def __init__(self, options: Optional[EngineOptions] = None) -> None:
        self.session = Session(options=options)
        self.database = self.session.database
        self.concepts: Dict[str, Concept] = {}
        self.relationships: Dict[str, Relationship] = {}
        self._derivations: List[str] = []
        self.options = options

    # -- schema ------------------------------------------------------------

    def concept(self, name: str, attributes: Sequence[str] = ()) -> Concept:
        """Declare a concept (entity type) with attribute names."""
        concept = Concept(name, tuple(attributes))
        self.concepts[name] = concept
        return concept

    def relationship(self, name: str, participants: Sequence[str],
                     value_column: Optional[str] = None) -> Relationship:
        """Declare a relationship among declared concepts."""
        for p in participants:
            if p not in self.concepts:
                raise ValueError(f"unknown concept {p!r}")
        rel = Relationship(name, tuple(participants), value_column)
        self.relationships[name] = rel
        return rel

    # -- data --------------------------------------------------------------

    def add_entity(self, concept: str, key: Any, **attributes: Any) -> Entity:
        """Mint an entity (unique-identifier property enforced) and store
        its membership and attribute facts."""
        if concept not in self.concepts:
            raise ValueError(f"unknown concept {concept!r}")
        spec = self.concepts[concept]
        unknown = set(attributes) - set(spec.attributes)
        if unknown:
            raise ValueError(f"unknown attributes {sorted(unknown)}")
        entity = self.database.entities.mint(concept, key)
        self.session.insert(concept, [(entity,)])
        for attr, value in attributes.items():
            self.session.insert(spec.attribute_relation(attr),
                                [(entity, value)])
        return entity

    def set_attribute(self, concept: str, entity: Entity, attribute: str,
                      value: Any) -> None:
        """Set (replace) a functional attribute fact."""
        spec = self.concepts[concept]
        name = spec.attribute_relation(attribute)
        old = [(t[0], t[1]) for t in self.database[name] if t[0] == entity]
        self.session.delete(name, old)
        self.session.insert(name, [(entity, value)])

    def relate(self, relationship: str, *entities: Entity,
               value: Any = None) -> None:
        """Add a relationship fact."""
        spec = self.relationships.get(relationship)
        if spec is None:
            raise ValueError(f"unknown relationship {relationship!r}")
        if len(entities) != len(spec.participants):
            raise ValueError(
                f"{relationship} relates {len(spec.participants)} entities"
            )
        for entity, concept in zip(entities, spec.participants):
            if entity.namespace != concept:
                raise ValueError(
                    f"{entity!r} is a {entity.namespace}, expected {concept}"
                )
        tup = entities + ((value,) if spec.value_column is not None else ())
        self.session.insert(relationship, [tup])

    # -- semantics ---------------------------------------------------------

    def define(self, rel_source: str) -> None:
        """Add derived concepts/relationships as Rel source.

        Loaded straight into the session: updates only dirty the strata
        that depend on the touched relations."""
        self._derivations.append(rel_source)
        self.session.load(rel_source)

    def program(self) -> RelProgram:
        """Deprecated shim: the session's program (kept for callers of the
        pre-Session API; mutations now apply incrementally, so there is no
        rebuild-on-change)."""
        return self.session.program

    # -- queries ------------------------------------------------------------

    def query(self, source: str) -> Relation:
        """Evaluate a Rel expression or fetch a relation by name."""
        program = self.session.program
        if source in program.closures or source in self.database:
            return program.relation(source)
        return self.session.execute(source)

    def ask(self, source: str) -> bool:
        """Boolean query: is the result non-empty?"""
        return bool(self.query(source))

    def entities_of(self, concept: str) -> List[Entity]:
        """All entities of a concept."""
        return [t[0] for t in self.database[concept]]

    def attribute(self, concept: str, entity: Entity,
                  attribute: str) -> Optional[Any]:
        """The value of a functional attribute, or None if absent.

        GNF needs no nulls: a missing attribute is a missing tuple.
        """
        spec = self.concepts[concept]
        rel = self.database[spec.attribute_relation(attribute)]
        for tup in rel:
            if tup[0] == entity:
                return tup[1]
        return None

    def neighbours(self, relationship: str, entity: Entity) -> List[Tuple]:
        """Tuples of a relationship mentioning the entity."""
        return [t for t in self.database[relationship] if entity in t]

    def statistics(self) -> Dict[str, int]:
        """Fact counts per stored relation."""
        return {name: len(rel) for name, rel in self.database.items()}
