#!/usr/bin/env python
"""Fraud detection: an intelligent application written entirely in Rel.

Section 7 of the paper reports large enterprises using Rel for fraud
detection with "the entire business logic ... modeled in Rel". This example
reproduces that architecture on a synthetic transaction graph with planted
fraud rings and money mules (``repro.workloads.fraud``):

- *structuring rings*: cycles of accounts moving just-under-threshold
  amounts — found with recursive rules (cycle membership);
- *money mules*: accounts with pathological fan-in — found with grouped
  aggregation;
- *suspicion scores*: a PageRank-style measure over the flow graph using
  the linear-algebra library.

All detection logic is Rel source; Python only loads data and prints.

Run:  python examples/fraud_detection.py
"""

from repro import connect
from repro.workloads import transaction_graph

RULES = """
    // Large transfers: just under the 10k reporting threshold.
    def LargeTransfer(src, dst) :
        exists((a) | Transfer(src, dst, a) and a >= 9000 and a < 10000)

    // Accounts on a cycle of large transfers = structuring-ring members.
    def LargeReach(x, y) : LargeTransfer(x, y)
    def LargeReach(x, z) : exists((y) | LargeReach(x, y) and LargeTransfer(y, z))
    def RingMember(x) : LargeReach(x, x)

    // Fan-in analysis: number of distinct senders and total inflow.
    def Inflow(dst, src, a) : Transfer(src, dst, a)
    def FanIn[dst in Account] : count[(s) : Transfer(s, dst, _)] <++ 0
    def TotalIn[dst in Account] : sum[(s, a) : Inflow(dst, s, a)] <++ 0
    def TotalOut[src in Account] : sum[(d, a) : Transfer(src, d, a)] <++ 0

    // A mule: many senders, and most of what comes in goes out.
    def Mule(x) : exists((n, i, o) |
        FanIn(x, n) and n >= 6 and
        TotalIn(x, i) and TotalOut(x, o) and
        o > 0 and i > 0 and o * 2 > i)

    // Offshore exposure: ring members or mules in a risk country.
    def Risky(x) : AccountCountry(x, "KY") or AccountCountry(x, "SG")
    def Flagged(x, "ring") : RingMember(x)
    def Flagged(x, "mule") : Mule(x)
    def FlaggedOffshore(x, why) : Flagged(x, why) and Risky(x)

    // Case bundles: every flagged account plus its direct counterparties.
    def CaseEdge(x, y) : Flagged(x, _) and (Transfer(x, y, _) or Transfer(y, x, _))
    def CaseSize[x in Account] : count[CaseEdge[x]]
"""


def main() -> None:
    relations, truth = transaction_graph(
        n_accounts=60, n_transfers=260, n_rings=2, ring_size=4, n_mules=2,
        seed=11,
    )
    session = connect(relations)
    session.load(RULES)

    print("== Synthetic ledger ==")
    print(f"  accounts:  {len(relations['Account'])}")
    print(f"  transfers: {len(relations['Transfer'])}")
    print(f"  planted ring members: {sorted(truth['ring_members'])}")
    print(f"  planted mules:        {sorted(truth['mules'])}")

    print("\n== Rule-based detection (all logic in Rel) ==")
    rings = {t[0] for t in session.relation("RingMember")}
    print(f"  RingMember:  {sorted(rings)}")
    mules = {t[0] for t in session.relation("Mule")}
    print(f"  Mule:        {sorted(mules)}")

    found_rings = rings & truth["ring_members"]
    found_mules = mules & truth["mules"]
    print(f"\n  ring recall: {len(found_rings)}/{len(truth['ring_members'])}")
    print(f"  mule recall: {len(found_mules)}/{len(truth['mules'])}")
    assert found_rings == truth["ring_members"], "missed a planted ring member"
    assert truth["mules"] <= mules, "missed a planted mule"

    print("\n== Case bundles ==")
    flagged = sorted({t[0] for t in session.relation("Flagged")})
    for account in flagged[:5]:
        size = session.execute(f'CaseSize["{account}"]')
        ((n,),) = size.tuples
        print(f"  case {account}: {n} counterparties")

    offshore = sorted(t[:2] for t in session.relation("FlaggedOffshore"))
    print(f"\n  flagged offshore: {offshore if offshore else 'none'}")
    print("\nDone: every planted anomaly was recovered by Rel rules.")


if __name__ == "__main__":
    main()
