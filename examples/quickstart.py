#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Walks through the Figure 1 database and the Section 3 queries — basic
rules, wildcards, negation, infinite relations, recursion — then a full
transaction with ``output``/``insert``/``delete`` and integrity
constraints (Sections 3.4–3.5).

Run:  python examples/quickstart.py
"""

from repro import connect
from repro.workloads import order_database


def show(title, relation):
    print(f"  {title}: {sorted(relation.tuples, key=repr)}")


def main() -> None:
    print("== The Figure 1 database ==")
    db = order_database()
    for name, rel in sorted(db.items()):
        show(name, rel)

    # ------------------------------------------------------------------
    print("\n== Section 3.1: basic rules ==")
    session = connect(db)
    session.load("""
        def OrderWithPayment(y) : PaymentOrder(_, y)
        def OrderedProductPrice(x, y) :
            OrderProductQuantity(_, x, _) and ProductPrice(x, y)
        def NotOrdered(x) :
            ProductPrice(x, _) and not OrderProductQuantity(_, x, _)
    """)
    show("OrderWithPayment", session.relation("OrderWithPayment"))
    show("OrderedProductPrice", session.relation("OrderedProductPrice"))
    show("NotOrdered", session.relation("NotOrdered"))

    # ------------------------------------------------------------------
    print("\n== Section 3.2: infinite relations, used safely ==")
    session.load("""
        def DiscountedPrice(x, y) :
            exists((z) | ProductPrice(x, z) and add(y, 5, z))
    """)
    show("DiscountedPrice", session.relation("DiscountedPrice"))

    # ------------------------------------------------------------------
    print("\n== Section 3.3: recursion (who is bought with what) ==")
    session.load("""
        def SameOrder(p1, p2) :
            exists((o) | OrderProductQuantity(o, p1, _)
                     and OrderProductQuantity(o, p2, _))
        def BoughtWith(p, q) : SameOrder(p, q) and p != q
    """)
    show("BoughtWith", session.relation("BoughtWith"))

    # ------------------------------------------------------------------
    print("\n== Section 5.2: aggregation (sums per order) ==")
    session.load("""
        def Ord(x) : OrderProductQuantity(x, _, _)
        def OrderPaymentAmount(x, y, z) :
            PaymentOrder(y, x) and PaymentAmount(y, z)
        def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0
        def OrderLineTotal(o, p, t) : exists((q, pr) |
            OrderProductQuantity(o, p, q) and ProductPrice(p, pr)
            and t = q * pr)
        def OrderTotal[o in Ord] : sum[OrderLineTotal[o]]
    """)
    show("OrderPaid", session.relation("OrderPaid"))
    show("OrderTotal", session.relation("OrderTotal"))

    # ------------------------------------------------------------------
    print("\n== Section 3.4: a transaction that closes fully-paid orders ==")
    txn_session = connect(order_database())
    database = txn_session.database
    result = txn_session.transact("""
        def Ord(x) : OrderProductQuantity(x, _, _)
        def OrderPaymentAmount(x, y, z) :
            PaymentOrder(y, x) and PaymentAmount(y, z)
        def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]]
        def OrderLineTotal(o, p, t) : exists((q, pr) |
            OrderProductQuantity(o, p, q) and ProductPrice(p, pr)
            and t = q * pr)
        def OrderTotal[o in Ord] : sum[OrderLineTotal[o]]

        def output(x, paid, total) : Ord(x) and
            OrderPaid(x, paid) and OrderTotal(x, total)

        def delete(:OrderProductQuantity, x, y, z) :
            OrderProductQuantity(x, y, z) and
            exists((u) | OrderPaid(x, u) and OrderTotal(x, u))
        def insert(:ClosedOrders, x) :
            exists((u) | OrderPaid(x, u) and OrderTotal(x, u))
    """)
    show("output (order, paid, total)", result.output)
    print(f"  committed: {result.committed}")
    show("ClosedOrders (new base relation)", database["ClosedOrders"])
    show("OrderProductQuantity after delete",
         database["OrderProductQuantity"])

    # ------------------------------------------------------------------
    print("\n== Section 3.5: integrity constraints abort bad transactions ==")
    bad = txn_session.transact("""
        ic integer_quantities() requires
            forall((x) | OrderProductQuantity(_, _, x) implies Int(x))
        def insert(:OrderProductQuantity, o, p, q) :
            o = "O9" and p = "P1" and q = "three"
    """)
    print(f"  committed: {bad.committed} (aborted by {bad.aborted_by!r})")
    assert "O9" not in {t[0] for t in database["OrderProductQuantity"]}

    # ------------------------------------------------------------------
    print("\n== Queries are just expressions ==")
    session2 = connect(order_database())
    show('OrderProductQuantity["O1"]',
         session2.execute('OrderProductQuantity["O1"]'))
    show("argmax[PaymentAmount]", session2.execute("argmax[PaymentAmount]"))
    show("avg of prices", session2.execute("avg[ProductPrice]"))
    print("\nDone.")


if __name__ == "__main__":
    main()
