#!/usr/bin/env python
"""Building a relational knowledge graph (Section 6).

Models a small enterprise domain — suppliers, parts, plants, shipments —
the RKG way:

1. concepts and relationships in **graph normal form** (each attribute its
   own relation; entities are "things, not strings" with globally unique
   identifiers);
2. the **semantic layer**: derived concepts and relationships written in
   Rel (risk categories, alternative sourcing, transitive dependencies);
3. **queries over the semantics**, not the storage: the application asks
   questions in domain vocabulary.

Also demonstrates the ER→GNF schema derivation of Section 2 on the paper's
own order/product/payment model.

Run:  python examples/knowledge_graph.py
"""

from repro.db.schema import derive_gnf_schema, paper_er_model
from repro.rkg import KnowledgeGraph


def build_graph() -> KnowledgeGraph:
    kg = KnowledgeGraph()
    kg.concept("Supplier", ["name", "country", "rating"])
    kg.concept("Part", ["name", "critical"])
    kg.concept("Plant", ["name", "city"])
    kg.relationship("Supplies", ["Supplier", "Part"], value_column="leadDays")
    kg.relationship("Consumes", ["Plant", "Part"])
    kg.relationship("Ships", ["Supplier", "Plant"])

    acme = kg.add_entity("Supplier", "acme", name="Acme", country="DE", rating=4)
    bolt = kg.add_entity("Supplier", "boltco", name="BoltCo", country="SG", rating=2)
    crane = kg.add_entity("Supplier", "crane", name="Crane", country="DE", rating=5)

    gear = kg.add_entity("Part", "gear", name="Gear", critical=True)
    bolts = kg.add_entity("Part", "bolt", name="Bolt", critical=False)
    axle = kg.add_entity("Part", "axle", name="Axle", critical=True)

    munich = kg.add_entity("Plant", "munich", name="Munich Works", city="Munich")
    austin = kg.add_entity("Plant", "austin", name="Austin Works", city="Austin")

    kg.relate("Supplies", acme, gear, value=14)
    kg.relate("Supplies", acme, bolts, value=3)
    kg.relate("Supplies", bolt, bolts, value=2)
    kg.relate("Supplies", crane, axle, value=21)
    kg.relate("Consumes", munich, gear)
    kg.relate("Consumes", munich, bolts)
    kg.relate("Consumes", austin, axle)
    kg.relate("Consumes", austin, bolts)
    kg.relate("Ships", acme, munich)
    kg.relate("Ships", bolt, austin)
    kg.relate("Ships", crane, austin)
    return kg


SEMANTIC_LAYER = """
    // A part is single-sourced if exactly one supplier provides it.
    def SourceCount[p in Part] : count[(s) : Supplies(s, p, _)] <++ 0
    def SingleSourced(p) : SourceCount(p, 1)

    // Risk: a critical part that is single-sourced, or sourced only from
    // low-rated suppliers.
    def LowRatedOnly(p) : Part(p) and
        forall((s) | Supplies(s, p, _) implies
                     exists((r) | SupplierRating(s, r) and r < 3))
    def AtRisk(p) : PartCritical(p, true) and SingleSourced(p)
    def AtRisk(p) : PartCritical(p, true) and LowRatedOnly(p)

    // A plant depends on a supplier if it consumes a part they supply.
    def DependsOn(plant, s) :
        exists((p) | Consumes(plant, p) and Supplies(s, p, _))

    // Plants exposed to risk through the parts they consume.
    def ExposedPlant(plant, p) : Consumes(plant, p) and AtRisk(p)

    // Fastest procurement option per part.
    def BestLead[p in Part] : min[(s, d) : Supplies(s, p, d)] <++ 999
"""


def main() -> None:
    print("== Section 2: deriving the paper's GNF schema from its ER model ==")
    schema = derive_gnf_schema(paper_er_model())
    for name, spec in sorted(schema.items()):
        value = spec.value_column or "—"
        print(f"  {name}({', '.join(spec.key_columns)} | {value})")

    print("\n== Building the supply-domain knowledge graph ==")
    kg = build_graph()
    for name, count in sorted(kg.statistics().items()):
        print(f"  {name}: {count} facts")

    print("\n== GNF in action: no nulls, unique identifiers ==")
    crane = kg.database.entities.lookup("Supplier", "crane")
    print(f"  crane's rating: {kg.attribute('Supplier', crane, 'rating')}")
    try:
        kg.add_entity("Part", "crane", name="Crane-shaped part")
    except ValueError as exc:
        print(f"  reusing 'crane' as a Part id is rejected: {exc}")

    print("\n== The semantic layer (all Rel) ==")
    kg.define(SEMANTIC_LAYER)
    at_risk = [kg.attribute("Part", t[0], "name")
               for t in kg.query("AtRisk").sorted_tuples()]
    print(f"  parts at risk: {sorted(at_risk)}")

    exposed = sorted(
        (kg.attribute("Plant", plant, "name"),
         kg.attribute("Part", part, "name"))
        for plant, part in kg.query("ExposedPlant").tuples
    )
    print(f"  exposed plants: {exposed}")

    print("\n== Queries in domain vocabulary ==")
    print("  does Munich depend on Acme?",
          kg.ask('(p, s) : DependsOn(p, s) and PlantName(p, "Munich Works") '
                 'and SupplierName(s, "Acme")'))
    counts = {
        kg.attribute("Part", p, "name"): n
        for p, n in kg.query("SourceCount").tuples
    }
    print(f"  source counts: {dict(sorted(counts.items()))}")
    leads = {
        kg.attribute("Part", p, "name"): d
        for p, d in kg.query("BestLead").tuples
    }
    print(f"  best lead days: {dict(sorted(leads.items()))}")
    print("\nDone.")


if __name__ == "__main__":
    main()
