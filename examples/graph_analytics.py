#!/usr/bin/env python
"""Graph analytics with the Rel graph library (Section 5.4).

Runs the library's algorithms — transitive closure, all-pairs shortest
paths (both of the paper's formulations), single-source distances, degrees,
triangles — on generated graphs, cross-checking everything against
networkx. Also demonstrates the reproduction finding about the verbatim
Section 1 APSP teaser (see EXPERIMENTS.md, E12).

Run:  python examples/graph_analytics.py
"""

import networkx as nx

from repro import connect
from repro.workloads import cycle_graph, random_graph
from repro.workloads.graphs import edges_relation, vertices_relation


def main() -> None:
    vertices, edges = random_graph(12, 26, seed=42)
    session = connect({
        "V": vertices_relation(vertices),
        "E": edges_relation(edges),
    })
    g = nx.DiGraph(edges)
    g.add_nodes_from(vertices)
    print(f"== Random digraph: {len(vertices)} vertices, {len(edges)} edges ==")

    print("\n== Transitive closure ==")
    tc = set(session.execute("TC[E]").tuples)
    print(f"  |TC| = {len(tc)}")
    expected = {(u, v) for u in g for v in nx.descendants(g, u)}
    expected |= {(u, u) for u in g
                 if any(u in nx.descendants(g, w) for w in g.successors(u))}
    assert tc == expected, "TC disagrees with networkx"
    print("  matches networkx reachability (including cycle self-pairs)")

    print("\n== All-pairs shortest paths, two formulations ==")
    apsp = set(session.execute("APSP[V, E]").tuples)
    apsp_neg = set(session.execute("APSPn[V, E]").tuples)
    assert apsp == apsp_neg
    print(f"  |APSP| = {len(apsp)}; min-aggregation == negation formulation")
    lengths = {
        (u, v): d
        for u, per_source in nx.all_pairs_shortest_path_length(g)
        for v, d in per_source.items()
    }
    assert {(u, v, d) for (u, v), d in lengths.items()} == apsp
    print("  matches networkx shortest-path lengths")

    print("\n== The Section 1 teaser discrepancy (cyclic graphs) ==")
    cvs, ces = cycle_graph(4)
    cyc = connect({
        "V": vertices_relation(cvs), "E": edges_relation(ces),
    })
    teaser = set(cyc.execute("APSPteaser[V, E]").tuples)
    guarded = set(cyc.execute("APSP[V, E]").tuples)
    print(f"  verbatim teaser extra tuples: {sorted(teaser - guarded)}")
    print("  (the girth appears at the diagonal; the guarded library "
          "version matches the negation formulation)")

    print("\n== Single-source distances from node 1 ==")
    sssp = sorted(session.execute("SSSP[E, 1]").tuples)
    print(f"  {sssp[:8]}{' …' if len(sssp) > 8 else ''}")
    for node, dist in sssp:
        assert lengths.get((1, node)) == dist

    print("\n== Degrees and triangles ==")
    for node in vertices[:4]:
        ((out_d,),) = session.execute(f"OutDegree[E, {node}]").tuples
        assert out_d == g.out_degree(node)
    print("  out-degrees match networkx")
    ((triangles,),) = session.execute("TriangleCount[E]").tuples
    ug = nx.Graph()
    ug.add_nodes_from(vertices)
    ug.add_edges_from(edges)
    assert triangles == sum(nx.triangles(ug).values()) // 3
    print(f"  triangle count = {triangles} (matches networkx)")

    print("\n== Reachability as a one-liner ==")
    reach = sorted(t[0] for t in session.execute("Reachable[E, 1]").tuples)
    print(f"  Reachable[E, 1] = {reach}")
    assert set(reach) == nx.descendants(g, 1)
    print("\nDone: every algorithm cross-checked against networkx.")


if __name__ == "__main__":
    main()
