#!/usr/bin/env python
"""Durable sessions: a database that survives process restarts.

``connect(path=...)`` turns a session into a durable one: every committed
write (define / insert / delete / transact / bulk_load) appends one record
to a write-ahead log before it is applied, snapshot checkpoints fold the
log into a single file in the background, and reopening the same directory
recovers exactly the committed state — including after a crash that tears
the final record.

This example plays three sessions against one directory:

1. *ingest* — bulk-load an edge table and define recursive reachability;
2. *reopen* — a brand-new process-equivalent session recovers everything,
   then keeps writing;
3. *crash*  — we bit-tear the live WAL segment by hand and show recovery
   keeps the committed prefix and drops only the torn tail.

Checkpoint format note (PR 7): with numpy present, relations whose
columns type cleanly are checkpointed as contiguous per-column blocks
instead of row lists. The two formats are mutually compatible forever —
a checkpoint written by the row codec (pre-PR-7, ``REPRO_COLUMNAR=off``,
or a no-numpy install) reopens under the columnar codec and vice versa —
so this example prints the same output whichever plane is active.

All state lives under a temporary directory; Python only loads and prints.

Run:  python examples/persistent_session.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import connect

RULES = """
    def Reach(x, y) : E(x, y)
    def Reach(x, y) : exists((z) | E(x, z) and Reach(z, y))
"""

EDGES = [(i, i + 1) for i in range(40)] + [(40, 0)]


def main():
    root = Path(tempfile.mkdtemp(prefix="repro-durable-"))
    db = root / "db"
    try:
        # -- 1. ingest ---------------------------------------------------
        session = connect(path=db, schema=RULES, load_stdlib=False)
        loaded = session.bulk_load("E", EDGES)
        session.insert("E", [(0, 40)])
        reach = len(session.relation("Reach"))
        stats = session.storage_statistics()
        print(f"ingested {loaded} edges in one bulk record "
              f"({stats['wal_appends']} WAL appends, "
              f"{stats['wal_bytes']} bytes); |Reach| = {reach}")
        session.checkpoint()  # fold the log into a snapshot file
        session.close()

        # -- 2. reopen ---------------------------------------------------
        session = connect(path=db, schema=RULES, load_stdlib=False)
        stats = session.storage_statistics()
        print(f"reopened from checkpoint: replayed "
              f"{stats['replayed_records']} WAL records, "
              f"|Reach| = {len(session.relation('Reach'))}")
        assert len(session.relation("Reach")) == reach
        session.delete("E", [(40, 0)])
        after_delete = len(session.relation("E"))
        session.close()

        # -- 3. crash ----------------------------------------------------
        # Tear the tail of the live segment mid-record, as a crash between
        # write() and fsync() would. Recovery keeps every whole record.
        segment = max(db.glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])
        session = connect(path=db, schema=RULES, load_stdlib=False)
        survivors = len(session.relation("E"))
        torn_away = " (the delete record was the torn one)" \
            if survivors != after_delete else ""
        print(f"after torn-tail crash: |E| = {survivors}{torn_away}")
        # Whatever the torn record was, the survivors are consistent and
        # the session is writable again.
        session.insert("E", [(99, 100)])
        assert (99, 100) in session.relation("E")
        session.close()
        print("Done")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
