#!/usr/bin/env python
"""Resource governance & fault tolerance: deadlines, budgets, survived faults.

Two failure families every serving system meets, and what this engine
does about them:

1. *Runaway queries* — a recursive query over a big graph can take
   seconds; a deadline (or row / iteration cap) makes the evaluation
   abort cooperatively, raising a typed error within a bounded latency.
   The abort discards every partially-built extent, so the session stays
   exactly consistent: the immediate re-query returns the true answer.
   The same knobs ride :meth:`QueryServer.submit`, where exceeding a
   deadline cancels the *running* evaluation, not just the future.

2. *Misbehaving disks* — a WAL append can die mid-write (ENOSPC, EIO, a
   torn buffer). The storage layer rolls the segment back to its last
   committed record and retries with bounded exponential backoff; a
   transient fault is absorbed (counted in ``storage_statistics()``),
   and a persistent one surfaces with memory and log still in step.
   Here the fault is *injected* through ``repro.storage.faults`` — the
   same seam the crash-recovery test matrix drives.

All state lives under a temporary directory; Python only loads and prints.

Run:  python examples/resource_governance.py
"""

import errno
import shutil
import tempfile
import time
from pathlib import Path

from repro import EvalBudget, QueryTimeoutError, connect
from repro.storage import FaultInjector, faults

RULES = """
    def Reach(x, y) : E(x, y)
    def Reach(x, y) : exists((z) | E(x, z) and Reach(z, y))
"""


def timed_out_recursive_query():
    # A 500-cycle: the full closure is 250,000 pairs and takes seconds.
    n = 500
    session = connect(load_stdlib=False, schema=RULES)
    session.define("E", [(i, (i + 1) % n) for i in range(n)])

    started = time.perf_counter()
    try:
        session.execute("Reach", deadline=0.1)
    except QueryTimeoutError as exc:
        latency = time.perf_counter() - started
        print(f"deadline=0.1s aborted after {latency * 1000:.0f} ms: {exc}")

    # The abort left nothing half-built: re-query with a generous budget
    # (every limit armed, none binding) and get the exact closure.
    generous = EvalBudget(deadline=600.0, max_rows=10 ** 9)
    rows = session.execute("Reach", budget=generous)
    assert len(rows) == n * n
    print(f"re-query after the abort: {len(rows)} rows — exact")


def survived_fsync_fault(db: Path):
    session = connect(path=db, load_stdlib=False, fsync="always")
    session.insert("Event", [(1, "ok")])

    # Inject: the next two fsyncs of the live WAL segment fail with EIO.
    injector = FaultInjector().fail("fsync", err=errno.EIO, times=2,
                                    path="wal")
    with faults.injected(injector):
        session.insert("Event", [(2, "written through a dying disk")])
    stats = session.storage_statistics()
    print(f"fsync fault injected twice; retries absorbed: "
          f"{stats['retries']}, appends committed: {stats['wal_appends']}")
    session.close()

    reopened = connect(path=db, load_stdlib=False)
    events = sorted(reopened.relation("Event"))
    assert len(events) == 2
    print(f"reopen recovers both events: {events}")
    reopened.close()


def main():
    root = Path(tempfile.mkdtemp(prefix="repro-governance-"))
    try:
        print("-- runaway query, governed --")
        timed_out_recursive_query()
        print()
        print("-- dying disk, survived --")
        survived_fsync_fault(root / "db")
        print()
        print("Done.")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
