#!/usr/bin/env python
"""Linear algebra and analytics as relations (Section 5.3.2 and 5.4).

Vectors, matrices, and tensors are just relations; the LA library is a few
lines of Rel each. This example:

- reproduces the paper's worked scalar product (u=(4,2), v=(3,6) → 24);
- multiplies random matrices and cross-checks against numpy;
- shows the data-independence point: the *same* Rel definition handles a
  sparse matrix whose zero entries simply do not exist as tuples;
- runs the paper's PageRank (with its stop condition) and compares with a
  plain power iteration.

Run:  python examples/linear_algebra.py
"""

import numpy as np

from repro import Relation, connect
from repro.workloads import random_matrix_relation
from repro.workloads.graphs import cycle_graph, random_graph
from repro.workloads.matrices import column_stochastic_link_matrix


def dense(rel, n, m):
    out = np.zeros((n, m))
    for i, j, v in rel.tuples:
        out[i - 1, j - 1] = v
    return out


def main() -> None:
    print("== The paper's scalar product ==")
    session = connect({
        "U": Relation([(1, 4), (2, 2)]),
        "V": Relation([(1, 3), (2, 6)]),
    })
    inner = session.execute("[k] : U[k]*V[k]")
    print(f"  [k] : U[k]*V[k]  =  {sorted(inner.tuples)}")
    print(f"  ScalarProd[U,V]  =  {session.execute('ScalarProd[U,V]')}  (paper: 24)")

    print("\n== MatrixMult against numpy ==")
    n = 6
    a_rel, _ = random_matrix_relation(n, n, seed=1, integer=True)
    b_rel, _ = random_matrix_relation(n, n, seed=2, integer=True)
    session = connect({"A": a_rel, "B": b_rel})
    result = session.execute("MatrixMult[A, B]")
    expected = dense(a_rel, n, n) @ dense(b_rel, n, n)
    assert np.allclose(dense(result, n, n), expected)
    print(f"  {n}×{n} dense multiply matches numpy "
          f"({len(result)} result cells)")

    print("\n== Data independence: the same code on a sparse matrix ==")
    sparse, triples = random_matrix_relation(40, 40, density=0.05, seed=3,
                                             integer=True)
    session = connect({"A": sparse, "B": sparse})
    result = session.execute("MatrixMult[A, B]")
    expected = dense(sparse, 40, 40) @ dense(sparse, 40, 40)
    got = dense(result, 40, 40)
    nonzero = expected != 0
    assert np.allclose(got[nonzero], expected[nonzero])
    print(f"  40×40 matrix stored as {len(triples)} tuples "
          f"(instead of 1600 cells); product has {len(result)} tuples")

    print("\n== PageRank with the paper's stop condition ==")
    _, edges = cycle_graph(5)
    extra = [(1, 3), (3, 5), (2, 5)]
    g = column_stochastic_link_matrix(edges + extra)
    session = connect({"G": g})
    ranks = dict(session.execute("PageRank[G]").tuples)

    n = 5
    m = dense(g, n, n)
    p = np.full(n, 1.0 / n)
    iterations = 0
    while True:
        iterations += 1
        nxt = m @ p
        if np.abs(nxt - p).max() <= 0.005:
            break
        p = nxt
    print(f"  power iteration took {iterations} steps to delta ≤ 0.005")
    for i in range(1, n + 1):
        print(f"  page {i}: Rel = {ranks[i]:.4f}   numpy = {p[i-1]:.4f}")
        assert abs(ranks[i] - p[i - 1]) < 0.02

    print("\n== Vector/matrix combinators ==")
    session = connect({
        "M": Relation([(1, 1, 2), (1, 2, 0.5), (2, 1, 1), (2, 2, 3)]),
        "v": Relation([(1, 1.0), (2, 2.0)]),
    })
    print(f"  MatrixVector[M,v] = {sorted(session.execute('MatrixVector[M,v]').tuples)}")
    print(f"  Transpose[M]      = {sorted(session.execute('Transpose[M]').tuples)}")
    print(f"  VectorScale[v, 3] = {sorted(session.execute('VectorScale[v, 3]').tuples)}")
    print("\nDone: all results verified against numpy.")


if __name__ == "__main__":
    main()
