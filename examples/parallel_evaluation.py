#!/usr/bin/env python
"""Sharded parallel fixpoint evaluation: workers, statistics, scaling.

The engine is GIL-bound, so CPU-heavy recursive queries gain nothing
from threads. ``connect(workers=N)`` instead evaluates semi-naive
fixpoint strata across ``N`` worker *processes*: the frontier is
hash-partitioned by join key, broadcast once per round through shared
memory, and each worker derives from its shard against a full replica
of the stratum totals. The merged result is exact — the differential
suite pins N shards ≡ one process — and everything ineligible falls
back to the in-process driver.

Three scenes:

1. *Engagement* — data first, rules after, then the first query
   materializes the recursive stratum through the parallel driver;
   ``parallel_statistics()`` shows the shards, rounds, and bytes.
2. *Exactness* — the same workload, int keys and string keys (string
   columns cross the process boundary as per-block string tables, never
   raw interner codes), compared against a sequential twin.
3. *Scaling* — wall-clock of workers=2 vs. in-process on a hub graph.
   On a multi-core host the parallel run wins; on a single-core
   container (like the one this repo grows in) it honestly does not,
   and the printout says which it measured.

Run:  python examples/parallel_evaluation.py
"""

import os
import time

from repro import connect

RULES = """
    def Reach(x, y) : E(x, y)
    def Reach(x, y) : exists((z) | E(x, z) and Reach(z, y))
"""


def hub_edges(spokes, hubs):
    """A dense little world: every spoke feeds every hub, hubs chain."""
    edges = [(s, spokes + h) for s in range(spokes) for h in range(hubs)]
    edges += [(spokes + h, spokes + h + 1) for h in range(hubs - 1)]
    return edges


def engagement():
    session = connect(workers=2, parallel="on", load_stdlib=False)
    session.define("E", [(i, i + 1) for i in range(400)])  # data first …
    session.load(RULES)                                    # … rules after
    rows = session.execute("Reach")                        # shards here
    stats = session.parallel_statistics()
    print(f"closure of a 400-chain: {len(rows)} rows")
    print(f"parallel_statistics():  {stats}")
    from repro.model.columns import KERNELS_AVAILABLE
    if KERNELS_AVAILABLE:
        assert stats.get("parallel_fixpoints", 0) >= 1
    else:
        # Without the columnar kernels the driver deliberately falls
        # back in-process; the result above is still exact.
        assert stats.get("fallbacks", 0) >= 1


def exactness():
    for label, make in (("int keys", lambda i: i),
                        ("str keys", lambda i: f"node-{i}")):
        par = connect(workers=2, parallel="on", load_stdlib=False)
        seq = connect(load_stdlib=False)
        edges = [(make(i), make(i + 1)) for i in range(200)]
        for s in (par, seq):
            s.define("E", edges)
            s.load(RULES)
        assert set(par.execute("Reach")) == set(seq.execute("Reach"))
        print(f"{label}: workers=2 ≡ in-process "
              f"({len(par.execute('Reach'))} rows)")


def scaling():
    edges = hub_edges(spokes=120, hubs=40)

    def closure_seconds(workers):
        session = connect(workers=workers,
                          parallel="on" if workers else "off",
                          load_stdlib=False)
        session.define("E", edges)
        session.load(RULES)
        started = time.perf_counter()
        rows = session.execute("Reach")
        return time.perf_counter() - started, len(rows)

    seq_s, n = closure_seconds(0)
    par_s, n2 = closure_seconds(2)
    assert n == n2
    cores = os.cpu_count() or 1
    print(f"hub closure ({n} rows) on {cores} core(s): "
          f"in-process {seq_s * 1000:.0f} ms, "
          f"workers=2 {par_s * 1000:.0f} ms "
          f"({seq_s / par_s:.2f}x)")
    if cores < 2:
        print("single-core host: the parallel run pays IPC for no "
              "extra compute — expected to lose here, wins at ≥2 cores")


def main():
    print("-- engagement & statistics --")
    engagement()
    print()
    print("-- N shards ≡ one process --")
    exactness()
    print()
    print("-- scaling measurement --")
    scaling()
    print()
    print("Done.")


if __name__ == "__main__":
    main()
