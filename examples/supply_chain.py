#!/usr/bin/env python
"""Supply-chain management: recursive BOM analytics in Rel.

Section 7 reports supply chain management among the enterprise
applications built on Rel. This example runs the classic multi-echelon
computations over a synthetic bill-of-materials DAG
(``repro.workloads.supply``):

- *BOM explosion*: total units of every part needed per unit of a finished
  good — recursion with multiplication and grouped summation;
- *where-used*: the inverse query, via plain transitive closure;
- *shortage propagation*: which finished goods are blocked by a
  low-stock part — recursion through negation;
- *procurement lead time*: the critical path (max over children) — the
  recursive-aggregation pattern of APSP.

Run:  python examples/supply_chain.py
"""

from repro import connect
from repro.workloads import bill_of_materials

RULES = """
    // ---- BOM explosion ---------------------------------------------------
    // Requires(root, part, n): one unit of root needs n units of part.
    def Requires(root, part, n) : Component(root, part, n)
    def Requires(root, part, n) :
        Item(root) and
        n = sum[(mid, m) : exists((a, b) |
                Component(root, mid, a) and Requires(mid, part, b)
                and m = a * b)]

    // ---- where-used -------------------------------------------------------
    def Uses(parent, child) : Component(parent, child, _)
    def Uses(parent, part) : exists((m) | Uses(parent, m) and Uses(m, part))
    def WhereUsed(part, good) : FinishedGood(good) and Uses(good, part)

    // ---- shortage propagation ----------------------------------------------
    def OutOfStock(x) : exists((s) | OnHand(x, s) and s < 5)
    def Blocked(x) : OutOfStock(x)
    def Blocked(x) : exists((c) | Component(x, c, _) and Blocked(c))
    def BlockedGood(g) : FinishedGood(g) and Blocked(g)
    def HealthyGood(g) : FinishedGood(g) and not Blocked(g)

    // ---- procurement lead time (critical path) -----------------------------
    def Lead(x, d) : RawMaterial(x) and d = min[(l) : Supplier(x, _, l)]
    def Lead(x, d) : Item(x) and not RawMaterial(x) and
        d = max[(c, t) : exists((l) | Component(x, c, _) and Lead(c, l)
                                      and t = l + 1)]

    // ---- purchasing plan for one good ---------------------------------------
    def RawNeed(good, part, n) :
        FinishedGood(good) and RawMaterial(part) and Requires(good, part, n)
"""


def main() -> None:
    relations, truth = bill_of_materials(levels=4, width=2, fanout=2, seed=9)
    session = connect(relations)
    session.load(RULES)

    layers = truth["layers"]
    print("== Bill of materials ==")
    print(f"  levels: {len(layers)}, items: {sum(map(len, layers))}, "
          f"component edges: {len(relations['Component'])}")
    goods = [t[0] for t in relations["FinishedGood"].sorted_tuples()]
    print(f"  finished goods: {goods}")

    print("\n== BOM explosion (total raw-material needs per finished good) ==")
    for good in goods[:2]:
        needs = sorted(session.execute(f'RawNeed["{good}"]').tuples)
        print(f"  {good}: " + ", ".join(f"{n}×{part}" for part, n in needs))
        # Cross-check one explosion against a direct Python walk.
        assert needs == sorted(python_explosion(relations, good).items())

    print("\n== Where-used (goods affected by each raw material) ==")
    raw0 = relations["RawMaterial"].sorted_tuples()[0][0]
    used_in = sorted(t[0] for t in session.execute(f'WhereUsed["{raw0}"]').tuples)
    print(f"  {raw0} is used in: {used_in}")

    print("\n== Shortage propagation ==")
    out = sorted(t[0] for t in session.relation("OutOfStock"))
    blocked = sorted(t[0] for t in session.relation("BlockedGood"))
    healthy = sorted(t[0] for t in session.relation("HealthyGood"))
    print(f"  out-of-stock items: {out}")
    print(f"  blocked goods:  {blocked}")
    print(f"  healthy goods:  {healthy}")
    assert set(blocked) | set(healthy) == set(goods)
    assert not set(blocked) & set(healthy)

    print("\n== Procurement lead times (critical path, days) ==")
    for good in goods[:3]:
        result = session.execute(f'Lead["{good}"]')
        ((days,),) = result.tuples
        print(f"  {good}: {days} days")

    print("\nDone: BOM explosion cross-checked against a Python reference.")


def python_explosion(relations, root):
    """Reference implementation of the BOM explosion, in plain Python."""
    children = {}
    for parent, child, count in relations["Component"].tuples:
        children.setdefault(parent, []).append((child, count))
    raw = {t[0] for t in relations["RawMaterial"].tuples}
    totals = {}

    def walk(item, multiplier):
        for child, count in children.get(item, ()):
            if child in raw:
                totals[child] = totals.get(child, 0) + multiplier * count
            walk(child, multiplier * count)

    walk(root, 1)
    return totals


if __name__ == "__main__":
    main()
