"""Setup shim for environments without the ``wheel`` package.

Offline environments that lack ``wheel`` cannot build PEP 660 editable
installs; with this shim, ``pip install -e .`` falls back to the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
